//! Property-based tests pitting the graph algorithms against brute force.

use iwa_graphs::dfs::has_cycle_from;
use iwa_graphs::cycles::{enumerate_cycles, CycleBudget};
use iwa_graphs::topo::is_acyclic;
use iwa_graphs::{BitSet, DiGraph, Dominators, Scc};
use proptest::prelude::*;

/// Strategy: a random digraph with up to `n` nodes and arbitrary edges.
fn arb_graph(max_n: usize) -> impl Strategy<Value = DiGraph<()>> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::btree_set((0..n, 0..n), 0..(n * 3)).prop_map(move |edges| {
            // A *simple* digraph: parallel edges would make node-sequence
            // cycle identity ambiguous (and never arise in CLGs).
            let mut g = DiGraph::with_nodes(n);
            for (u, v) in edges {
                g.add_arc(u, v);
            }
            g
        })
    })
}

/// Brute-force reachability matrix by repeated DFS.
fn reach_matrix(g: &DiGraph<()>) -> Vec<BitSet> {
    (0..g.num_nodes()).map(|v| g.reachable_from(v)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Tarjan components == mutual-reachability equivalence classes.
    #[test]
    fn scc_matches_mutual_reachability(g in arb_graph(12)) {
        let scc = Scc::compute(&g);
        let reach = reach_matrix(&g);
        for u in 0..g.num_nodes() {
            for v in 0..g.num_nodes() {
                let mutual = reach[u].contains(v) && reach[v].contains(u);
                prop_assert_eq!(
                    scc.same_component(u, v),
                    mutual,
                    "nodes {} and {}", u, v
                );
            }
        }
    }

    /// A graph has a cycle reachable from node 0 iff some reachable node sits
    /// in a non-trivial SCC.
    #[test]
    fn cycle_from_matches_scc(g in arb_graph(12)) {
        let scc = Scc::compute(&g);
        let reachable = g.reachable_from(0);
        let via_scc = reachable
            .iter()
            .any(|v| scc.in_nontrivial_component(&g, v));
        prop_assert_eq!(has_cycle_from(&g, 0), via_scc);
    }

    /// Kahn acyclicity agrees with "no non-trivial SCC and no self-loop".
    #[test]
    fn topo_agrees_with_scc(g in arb_graph(12)) {
        let scc = Scc::compute(&g);
        let any_cycle = (0..g.num_nodes()).any(|v| scc.in_nontrivial_component(&g, v));
        prop_assert_eq!(is_acyclic(&g), !any_cycle);
    }

    /// Dominance: `a` dominates `b` iff removing `a` makes `b` unreachable
    /// from the entry (for a != b, both reachable).
    #[test]
    fn dominators_match_removal_definition(g in arb_graph(10)) {
        let entry = 0usize;
        let dom = Dominators::compute(&g, entry);
        let reachable = g.reachable_from(entry);
        for a in 0..g.num_nodes() {
            if a == entry || !reachable.contains(a) {
                continue;
            }
            // Reachability with `a` deleted.
            let without_a =
                g.reachable_from_filtered(entry, |u, v, _| u != a && v != a);
            for b in 0..g.num_nodes() {
                if !reachable.contains(b) || b == a {
                    continue;
                }
                let dominated = !without_a.contains(b);
                prop_assert_eq!(
                    dom.dominates(a, b),
                    dominated,
                    "a={} b={}", a, b
                );
            }
        }
    }

    /// Every enumerated cycle is simple and its edges exist; count agrees
    /// with acyclicity.
    #[test]
    fn cycles_are_simple_and_complete(g in arb_graph(8)) {
        let e = enumerate_cycles(&g, 1 << 16, 1 << 20);
        prop_assert_eq!(e.budget, CycleBudget::Complete);
        prop_assert_eq!(e.cycles.is_empty(), is_acyclic(&g));
        for cycle in &e.cycles {
            let mut sorted = cycle.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), cycle.len());
            for w in cycle.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
            prop_assert!(g.has_edge(*cycle.last().unwrap(), cycle[0]));
        }
    }

    /// No duplicate cycles are emitted (set of node-sets with rotation
    /// canonicalisation must be unique).
    #[test]
    fn cycles_are_unique(g in arb_graph(7)) {
        let e = enumerate_cycles(&g, 1 << 16, 1 << 20);
        prop_assert_eq!(e.budget, CycleBudget::Complete);
        let mut canon: Vec<Vec<usize>> = e.cycles.to_vec();
        let before = canon.len();
        canon.sort();
        canon.dedup();
        prop_assert_eq!(canon.len(), before);
    }
}
