//! Property-based tests: brute-force checks of the graph algorithms, plus
//! the CSR-vs-adjacency-list equivalence suite guarding the PR-7 graph-core
//! redesign.
//!
//! [`AdjGraph`] below reimplements the pre-redesign `DiGraph` storage
//! (per-node `Vec` push order on both adjacency sides) as a test-local
//! [`GraphView`]. Every algorithm result — SCC component numbering and
//! member order, condensation edges, cycle enumeration, dominators, topo
//! order — must be *byte-identical* between the two representations on
//! random digraphs, because downstream reports are pinned to these orders.

use iwa_graphs::cycles::{enumerate_cycles, CycleBudget};
use iwa_graphs::dfs::has_cycle_from;
use iwa_graphs::topo::{is_acyclic, topological_sort};
use iwa_graphs::{BitSet, Csr, Dominators, GraphView, Scc};
use proptest::prelude::*;

/// The pre-redesign adjacency-list representation, kept as the reference
/// implementation for the equivalence proptests.
#[derive(Clone, Debug)]
struct AdjGraph {
    succs: Vec<Vec<u32>>,
    preds: Vec<Vec<u32>>,
    num_edges: usize,
}

impl AdjGraph {
    fn with_nodes(n: usize) -> Self {
        AdjGraph {
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    fn add_arc(&mut self, u: usize, v: usize) {
        self.succs[u].push(v as u32);
        self.preds[v].push(u as u32);
        self.num_edges += 1;
    }
}

impl GraphView for AdjGraph {
    fn num_nodes(&self) -> usize {
        self.succs.len()
    }
    fn num_edges(&self) -> usize {
        self.num_edges
    }
    fn successors(&self, u: usize) -> &[u32] {
        &self.succs[u]
    }
    fn predecessors(&self, u: usize) -> &[u32] {
        &self.preds[u]
    }
}

/// Strategy: a random edge list over `1..=max_n` nodes. Built as a btree set
/// so the graph is *simple* (parallel edges would make node-sequence cycle
/// identity ambiguous, and never arise in CLGs).
fn arb_edges(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::btree_set((0..n, 0..n), 0..(n * 3))
            .prop_map(move |edges| (n, edges.into_iter().collect()))
    })
}

/// Build both representations from one edge list.
fn both(n: usize, edges: &[(usize, usize)]) -> (Csr<()>, AdjGraph) {
    let csr = Csr::from_edges(n, edges);
    let mut adj = AdjGraph::with_nodes(n);
    for &(u, v) in edges {
        adj.add_arc(u, v);
    }
    (csr, adj)
}

/// Brute-force reachability matrix by repeated DFS.
fn reach_matrix(g: &Csr<()>) -> Vec<BitSet> {
    (0..g.num_nodes()).map(|v| g.reachable_from(v)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Tarjan components == mutual-reachability equivalence classes.
    #[test]
    fn scc_matches_mutual_reachability(input in arb_edges(12)) {
        let (n, edges) = input;
        let g = Csr::from_edges(n, &edges);
        let scc = Scc::compute(&g, None);
        let reach = reach_matrix(&g);
        for u in 0..n {
            for v in 0..n {
                let mutual = reach[u].contains(v) && reach[v].contains(u);
                prop_assert_eq!(
                    scc.same_component(u, v),
                    mutual,
                    "nodes {} and {}", u, v
                );
            }
        }
    }

    /// A graph has a cycle reachable from node 0 iff some reachable node sits
    /// in a non-trivial SCC.
    #[test]
    fn cycle_from_matches_scc(input in arb_edges(12)) {
        let (n, edges) = input;
        let g = Csr::from_edges(n, &edges);
        let scc = Scc::compute(&g, None);
        let reachable = g.reachable_from(0);
        let via_scc = reachable
            .iter_ones()
            .any(|v| scc.in_nontrivial_component(&g, v));
        prop_assert_eq!(has_cycle_from(&g, 0), via_scc);
    }

    /// Kahn acyclicity agrees with "no non-trivial SCC and no self-loop".
    #[test]
    fn topo_agrees_with_scc(input in arb_edges(12)) {
        let (n, edges) = input;
        let g = Csr::from_edges(n, &edges);
        let scc = Scc::compute(&g, None);
        let any_cycle = (0..n).any(|v| scc.in_nontrivial_component(&g, v));
        prop_assert_eq!(is_acyclic(&g), !any_cycle);
    }

    /// Dominance: `a` dominates `b` iff removing `a` makes `b` unreachable
    /// from the entry (for a != b, both reachable).
    #[test]
    fn dominators_match_removal_definition(input in arb_edges(10)) {
        let (n, edges) = input;
        let g = Csr::from_edges(n, &edges);
        let entry = 0usize;
        let dom = Dominators::compute(&g, entry);
        let reachable = g.reachable_from(entry);
        for a in 0..n {
            if a == entry || !reachable.contains(a) {
                continue;
            }
            // Reachability with `a` deleted.
            let without_a =
                g.reachable_from_filtered(entry, |u, v, _| u != a && v != a);
            for b in 0..n {
                if !reachable.contains(b) || b == a {
                    continue;
                }
                let dominated = !without_a.contains(b);
                prop_assert_eq!(
                    dom.dominates(a, b),
                    dominated,
                    "a={} b={}", a, b
                );
            }
        }
    }

    /// Every enumerated cycle is simple and its edges exist; count agrees
    /// with acyclicity.
    #[test]
    fn cycles_are_simple_and_complete(input in arb_edges(8)) {
        let (n, edges) = input;
        let g = Csr::from_edges(n, &edges);
        let e = enumerate_cycles(&g, 1 << 16, 1 << 20);
        prop_assert_eq!(e.budget, CycleBudget::Complete);
        prop_assert_eq!(e.cycles.is_empty(), is_acyclic(&g));
        for cycle in &e.cycles {
            let mut sorted = cycle.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), cycle.len());
            for w in cycle.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
            prop_assert!(g.has_edge(*cycle.last().unwrap(), cycle[0]));
        }
    }

    /// No duplicate cycles are emitted (set of node-sets with rotation
    /// canonicalisation must be unique).
    #[test]
    fn cycles_are_unique(input in arb_edges(7)) {
        let (n, edges) = input;
        let g = Csr::from_edges(n, &edges);
        let e = enumerate_cycles(&g, 1 << 16, 1 << 20);
        prop_assert_eq!(e.budget, CycleBudget::Complete);
        let mut canon: Vec<Vec<usize>> = e.cycles.to_vec();
        let before = canon.len();
        canon.sort();
        canon.dedup();
        prop_assert_eq!(canon.len(), before);
    }

    // ---- CSR vs legacy-adjacency-list equivalence (PR-7 redesign gate) ----

    /// Adjacency slices agree edge-for-edge, in order, on both sides.
    #[test]
    fn csr_adjacency_identical(input in arb_edges(14)) {
        let (n, edges) = input;
        let (csr, adj) = both(n, &edges);
        prop_assert_eq!(csr.num_edges(), adj.num_edges());
        for v in 0..n {
            prop_assert_eq!(Csr::successors(&csr, v), adj.successors(v));
            prop_assert_eq!(Csr::predecessors(&csr, v), adj.predecessors(v));
        }
    }

    /// SCC output — component numbering AND member order — is byte-identical.
    #[test]
    fn csr_scc_identical(input in arb_edges(14)) {
        let (n, edges) = input;
        let (csr, adj) = both(n, &edges);
        let a = Scc::compute(&csr, None);
        let b = Scc::compute(&adj, None);
        prop_assert_eq!(&a.comp, &b.comp);
        prop_assert_eq!(&a.members, &b.members);
        // Masked runs agree too (mask = even nodes).
        let mut mask = BitSet::new(n);
        for v in (0..n).step_by(2) {
            mask.insert(v);
        }
        let am = Scc::compute(&csr, Some(&mask));
        let bm = Scc::compute(&adj, Some(&mask));
        prop_assert_eq!(&am.comp, &bm.comp);
        prop_assert_eq!(&am.members, &bm.members);
    }

    /// Condensation edge lists are identical (order included).
    #[test]
    fn csr_condensation_identical(input in arb_edges(14)) {
        let (n, edges) = input;
        let (csr, adj) = both(n, &edges);
        let a = Scc::compute(&csr, None).condensation(&csr);
        let b = Scc::compute(&adj, None).condensation(&adj);
        let ae: Vec<(usize, usize)> = a.edges().map(|(u, v, ())| (u, v)).collect();
        let be: Vec<(usize, usize)> = b.edges().map(|(u, v, ())| (u, v)).collect();
        prop_assert_eq!(ae, be);
        prop_assert_eq!(a.num_nodes(), b.num_nodes());
    }

    /// Cycle enumeration emits the same cycles in the same order.
    #[test]
    fn csr_cycles_identical(input in arb_edges(8)) {
        let (n, edges) = input;
        let (csr, adj) = both(n, &edges);
        let a = enumerate_cycles(&csr, 1 << 16, 1 << 20);
        let b = enumerate_cycles(&adj, 1 << 16, 1 << 20);
        prop_assert_eq!(a.budget, b.budget);
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.cycles, b.cycles);
    }

    /// Dominator tables agree node-for-node.
    #[test]
    fn csr_dominators_identical(input in arb_edges(12)) {
        let (n, edges) = input;
        let (csr, adj) = both(n, &edges);
        let a = Dominators::compute(&csr, 0);
        let b = Dominators::compute(&adj, 0);
        for v in 0..n {
            prop_assert_eq!(a.idom(v), b.idom(v), "idom of {}", v);
            prop_assert_eq!(a.is_reachable(v), b.is_reachable(v));
        }
    }

    /// Topological order (including its exact node sequence) is identical.
    #[test]
    fn csr_topo_identical(input in arb_edges(14)) {
        let (n, edges) = input;
        let (csr, adj) = both(n, &edges);
        prop_assert_eq!(topological_sort(&csr), topological_sort(&adj));
    }
}
