//! Iterative depth-first traversal utilities.
//!
//! All traversals are iterative (explicit stack) so that the deep CLGs built
//! from large generated programs cannot overflow the call stack.

use crate::view::GraphView;
use crate::BitSet;

/// The orders produced by a depth-first traversal.
#[derive(Clone, Debug)]
pub struct DfsOrders {
    /// Nodes in the order they were first discovered.
    pub preorder: Vec<usize>,
    /// Nodes in the order they were finished (all descendants done).
    pub postorder: Vec<usize>,
    /// `discovered[v]` iff `v` was reached.
    pub discovered: BitSet,
}

/// Depth-first traversal from `start`, recording pre- and post-order.
#[must_use]
pub fn dfs<G: GraphView + ?Sized>(g: &G, start: usize) -> DfsOrders {
    dfs_multi(g, std::iter::once(start))
}

/// Depth-first traversal from several roots (in the given order); nodes
/// reachable from an earlier root are not revisited from a later one.
#[must_use]
pub fn dfs_multi<G: GraphView + ?Sized>(
    g: &G,
    starts: impl IntoIterator<Item = usize>,
) -> DfsOrders {
    let n = g.num_nodes();
    let mut discovered = BitSet::new(n);
    let mut preorder = Vec::new();
    let mut postorder = Vec::new();
    // Stack frames: (node, index of next successor to visit).
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for root in starts {
        if !discovered.insert(root) {
            continue;
        }
        preorder.push(root);
        stack.push((root, 0));
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            if *next < g.out_degree(u) {
                let v = g.successors(u)[*next] as usize;
                *next += 1;
                if discovered.insert(v) {
                    preorder.push(v);
                    stack.push((v, 0));
                }
            } else {
                postorder.push(u);
                stack.pop();
            }
        }
    }
    DfsOrders {
        preorder,
        postorder,
        discovered,
    }
}

/// Reverse postorder (the canonical forward-dataflow iteration order) over
/// nodes reachable from `start`.
#[must_use]
pub fn reverse_postorder<G: GraphView + ?Sized>(g: &G, start: usize) -> Vec<usize> {
    let mut po = dfs(g, start).postorder;
    po.reverse();
    po
}

/// Does the subgraph reachable from `start` contain a cycle?
///
/// Uses the classic three-colour scheme: a back edge to a grey (on-stack)
/// node witnesses a cycle. This is the primitive behind the paper's *naive*
/// deadlock check ("a depth-first traversal … will find a cycle if one
/// exists", §3.1).
#[must_use]
pub fn has_cycle_from<G: GraphView + ?Sized>(g: &G, start: usize) -> bool {
    let n = g.num_nodes();
    let mut discovered = BitSet::new(n);
    let mut on_stack = BitSet::new(n);
    let mut stack: Vec<(usize, usize)> = Vec::new();
    if !discovered.insert(start) {
        return false;
    }
    on_stack.insert(start);
    stack.push((start, 0));
    while let Some(&mut (u, ref mut next)) = stack.last_mut() {
        if *next < g.out_degree(u) {
            let v = g.successors(u)[*next] as usize;
            *next += 1;
            if on_stack.contains(v) {
                return true;
            }
            if discovered.insert(v) {
                on_stack.insert(v);
                stack.push((v, 0));
            }
        } else {
            on_stack.remove(u);
            stack.pop();
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Csr, GraphBuilder};

    #[test]
    fn orders_on_a_diamond() {
        // 0 → 1 → 3, 0 → 2 → 3
        let g = Csr::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let o = dfs(&g, 0);
        assert_eq!(o.preorder[0], 0);
        assert_eq!(*o.postorder.last().unwrap(), 0);
        assert_eq!(o.discovered.count(), 4);
        // postorder: 3 finishes before both 1's and 0's finish
        let pos = |v: usize| o.postorder.iter().position(|&x| x == v).unwrap();
        assert!(pos(3) < pos(1));
        assert!(pos(1) < pos(0) || pos(2) < pos(0));
    }

    #[test]
    fn rpo_starts_at_root() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (0, 3)]);
        let rpo = reverse_postorder(&g, 0);
        assert_eq!(rpo[0], 0);
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn cycle_detection() {
        let acyclic = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(!has_cycle_from(&acyclic, 0));
        let cyclic = Csr::from_edges(3, &[(0, 1), (1, 2), (2, 1)]);
        assert!(has_cycle_from(&cyclic, 0));
        // Cycle not reachable from start is not reported.
        let distant = Csr::from_edges(4, &[(0, 1), (2, 3), (3, 2)]);
        assert!(!has_cycle_from(&distant, 0));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut b: GraphBuilder<()> = GraphBuilder::with_nodes(2);
        b.add_arc(0, 1);
        b.add_arc(1, 1);
        assert!(has_cycle_from(&b.freeze(), 0));
    }

    #[test]
    fn multi_root_covers_components() {
        let g = Csr::from_edges(4, &[(0, 1), (2, 3)]);
        let o = dfs_multi(&g, [0, 2]);
        assert_eq!(o.discovered.count(), 4);
    }
}
