//! Budget-bounded enumeration of simple (elementary) cycles.
//!
//! Exact deadlock-cycle checking is NP-hard (paper, Theorems 2–3), so the
//! workspace uses enumeration only as *ground truth on small graphs*: the
//! `iwa-analysis::exact` checker walks every simple cycle of a CLG and tests
//! the paper's constraints 2/3a on its head nodes, and the Theorem 2/3
//! validation harness compares cycle existence against SAT. Every search is
//! budgeted: exceeding the budget is reported, never silently truncated.
//!
//! Each simple cycle is enumerated exactly once, rooted at its
//! minimum-indexed node (the classic rooted-DFS scheme).

use crate::view::GraphView;
use crate::BitSet;

/// Why enumeration stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CycleBudget {
    /// All simple cycles were enumerated.
    Complete,
    /// The cycle-count cap was reached; more cycles may exist.
    TruncatedCycles,
    /// The DFS step cap was reached; more cycles may exist.
    TruncatedSteps,
}

/// Result of a bounded cycle enumeration.
#[derive(Clone, Debug)]
pub struct CycleEnumeration {
    /// The cycles found, each as a node sequence (first node is the
    /// minimum-indexed node of the cycle; no repeated nodes; the closing
    /// edge back to the first node is implicit).
    pub cycles: Vec<Vec<usize>>,
    /// Whether the search was exhaustive.
    pub budget: CycleBudget,
    /// Number of DFS steps spent.
    pub steps: usize,
}

/// Enumerate simple cycles of `g`, stopping after `max_cycles` cycles or
/// `max_steps` DFS edge-steps.
///
/// A visitor variant is available as [`for_each_cycle`] when cycles should
/// be filtered on the fly without materialising all of them.
#[must_use]
pub fn enumerate_cycles<G: GraphView + ?Sized>(
    g: &G,
    max_cycles: usize,
    max_steps: usize,
) -> CycleEnumeration {
    let mut cycles = Vec::new();
    let (budget, steps) = for_each_cycle(g, max_cycles, max_steps, |cycle| {
        cycles.push(cycle.to_vec());
        true
    });
    CycleEnumeration {
        cycles,
        budget,
        steps,
    }
}

/// Visit each simple cycle of `g` (as a node path, minimum node first).
///
/// `visit` returns `false` to stop early (counted as a cycle-budget
/// truncation). Returns the stop reason and the number of DFS steps used.
pub fn for_each_cycle<G: GraphView + ?Sized>(
    g: &G,
    max_cycles: usize,
    max_steps: usize,
    mut visit: impl FnMut(&[usize]) -> bool,
) -> (CycleBudget, usize) {
    let n = g.num_nodes();
    let mut steps = 0usize;
    let mut found = 0usize;
    let mut on_path = BitSet::new(n);

    for root in 0..n {
        // DFS restricted to nodes >= root; cycles through smaller nodes were
        // enumerated from their own (smaller) roots.
        let mut path: Vec<usize> = vec![root];
        on_path.clear();
        on_path.insert(root);
        // Frame: next successor index per path element.
        let mut frame: Vec<usize> = vec![0];

        while let Some(&u) = path.last() {
            let next = frame.last_mut().expect("frame stack in sync");
            if *next < g.out_degree(u) {
                let v = g.successors(u)[*next] as usize;
                *next += 1;
                steps += 1;
                if steps >= max_steps {
                    return (CycleBudget::TruncatedSteps, steps);
                }
                if v < root {
                    continue;
                }
                if v == root {
                    found += 1;
                    if !visit(&path) || found >= max_cycles {
                        return (CycleBudget::TruncatedCycles, steps);
                    }
                    continue;
                }
                if !on_path.contains(v) {
                    on_path.insert(v);
                    path.push(v);
                    frame.push(0);
                }
            } else {
                on_path.remove(u);
                path.pop();
                frame.pop();
            }
        }
    }
    (CycleBudget::Complete, steps)
}

/// Count simple cycles up to the given budgets (convenience wrapper).
#[must_use]
pub fn count_cycles<G: GraphView + ?Sized>(
    g: &G,
    max_cycles: usize,
    max_steps: usize,
) -> (usize, CycleBudget) {
    let e = enumerate_cycles(g, max_cycles, max_steps);
    (e.cycles.len(), e.budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Csr, GraphBuilder};

    const BIG: usize = 1 << 20;

    #[test]
    fn triangle_has_one_cycle() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let e = enumerate_cycles(&g, BIG, BIG);
        assert_eq!(e.budget, CycleBudget::Complete);
        assert_eq!(e.cycles, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn two_triangles_sharing_a_node() {
        // 0-1-2 and 0-3-4
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
        let e = enumerate_cycles(&g, BIG, BIG);
        assert_eq!(e.budget, CycleBudget::Complete);
        assert_eq!(e.cycles.len(), 2);
    }

    #[test]
    fn complete_digraph_k3_has_five_cycles() {
        // K3 with all 6 arcs: cycles = three 2-cycles + two 3-cycles.
        let g = Csr::from_edges(3, &[(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)]);
        let e = enumerate_cycles(&g, BIG, BIG);
        assert_eq!(e.budget, CycleBudget::Complete);
        assert_eq!(e.cycles.len(), 5);
    }

    #[test]
    fn self_loops_count() {
        let mut b: GraphBuilder<()> = GraphBuilder::with_nodes(2);
        b.add_arc(0, 0);
        b.add_arc(0, 1);
        let e = enumerate_cycles(&b.freeze(), BIG, BIG);
        assert_eq!(e.cycles, vec![vec![0]]);
    }

    #[test]
    fn dag_has_no_cycles() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let (count, budget) = count_cycles(&g, BIG, BIG);
        assert_eq!(count, 0);
        assert_eq!(budget, CycleBudget::Complete);
    }

    #[test]
    fn cycle_budget_truncates() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)]);
        let e = enumerate_cycles(&g, 2, BIG);
        assert_eq!(e.budget, CycleBudget::TruncatedCycles);
        assert_eq!(e.cycles.len(), 2);
        let e2 = enumerate_cycles(&g, BIG, 3);
        assert_eq!(e2.budget, CycleBudget::TruncatedSteps);
    }

    #[test]
    fn visitor_can_stop_early() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]);
        let mut seen = 0;
        let (budget, _) = for_each_cycle(&g, BIG, BIG, |_| {
            seen += 1;
            false
        });
        assert_eq!(seen, 1);
        assert_eq!(budget, CycleBudget::TruncatedCycles);
    }

    #[test]
    fn every_reported_cycle_is_a_real_simple_cycle() {
        // Randomish fixed graph; verify each cycle's edges exist and nodes
        // are distinct.
        let g = Csr::from_edges(
            6,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 2),
                (4, 5),
                (5, 4),
                (5, 0),
            ],
        );
        let e = enumerate_cycles(&g, BIG, BIG);
        assert_eq!(e.budget, CycleBudget::Complete);
        assert!(!e.cycles.is_empty());
        for cycle in &e.cycles {
            let mut sorted = cycle.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), cycle.len(), "repeated node in {cycle:?}");
            for w in cycle.windows(2) {
                assert!(g.has_edge(w[0], w[1]), "missing edge in {cycle:?}");
            }
            assert!(g.has_edge(*cycle.last().unwrap(), cycle[0]));
            assert_eq!(cycle[0], *cycle.iter().min().unwrap());
        }
    }
}
