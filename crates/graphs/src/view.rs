//! The [`GraphView`] abstraction all graph algorithms are written against.
//!
//! The workspace's algorithms (Tarjan SCC, DFS, Kahn, dominators, cycle
//! enumeration) only ever need adjacency *slices* — they never mutate and
//! never read edge labels. Writing them against this minimal trait lets the
//! CSR representation ([`crate::Csr`]) and any test-local reference
//! representation (e.g. a plain adjacency list used by the equivalence
//! proptests) share one implementation, and kept both representations
//! runnable side by side while the workspace migrated off the legacy
//! adjacency-list `DiGraph`.

/// Read-only adjacency view of a directed graph over dense node ids
/// `0..num_nodes`, with node ids stored as `u32`.
///
/// Adjacency order is part of the contract: `successors(u)` must yield
/// targets in a stable, representation-independent order (insertion order of
/// the edges), because DFS visit order — and therefore SCC component
/// numbering, cycle enumeration order, and every downstream byte-pinned
/// report — depends on it.
pub trait GraphView {
    /// Number of nodes (node ids are `0..num_nodes`).
    fn num_nodes(&self) -> usize;

    /// Number of edges.
    fn num_edges(&self) -> usize;

    /// Outgoing edge targets of `u`, in edge insertion order.
    fn successors(&self, u: usize) -> &[u32];

    /// Incoming edge sources of `u`, in edge insertion order.
    fn predecessors(&self, u: usize) -> &[u32];

    /// Out-degree of `u`.
    fn out_degree(&self, u: usize) -> usize {
        self.successors(u).len()
    }

    /// In-degree of `u`.
    fn in_degree(&self, u: usize) -> usize {
        self.predecessors(u).len()
    }

    /// Does the edge `u → v` exist (with any label)?
    fn has_edge(&self, u: usize, v: usize) -> bool {
        self.successors(u).contains(&(v as u32))
    }
}
