//! Compressed-sparse-row directed graphs with arena-backed construction.
//!
//! [`GraphBuilder`] accumulates edges in one flat `Vec<(u32, u32, L)>` arena;
//! [`GraphBuilder::freeze`] packs them into a [`Csr`] — four contiguous
//! arrays (forward offsets/targets, reverse offsets/sources) plus one label
//! array parallel to the forward targets. Freezing uses a *stable* counting
//! sort by source, so `successors(u)` preserves per-source edge insertion
//! order exactly as the legacy adjacency-list representation did; DFS visit
//! order (and with it SCC numbering and every byte-pinned report) is
//! therefore unchanged by the representation swap.

use crate::view::GraphView;
use crate::BitSet;

/// Mutable edge-arena builder for a [`Csr`] graph.
///
/// Parallel edges and self-loops are permitted (the CLG never produces them,
/// but raw sync graphs built for Theorem 3 may be irregular).
#[derive(Clone, Debug)]
pub struct GraphBuilder<L = ()> {
    num_nodes: usize,
    edges: Vec<(u32, u32, L)>,
}

impl<L> Default for GraphBuilder<L> {
    fn default() -> Self {
        GraphBuilder {
            num_nodes: 0,
            edges: Vec::new(),
        }
    }
}

impl<L> GraphBuilder<L> {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// An empty builder pre-sized for `n` nodes (nodes `0..n` exist).
    #[must_use]
    pub fn with_nodes(n: usize) -> Self {
        GraphBuilder {
            num_nodes: n,
            edges: Vec::new(),
        }
    }

    /// Add a fresh node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.num_nodes += 1;
        self.num_nodes - 1
    }

    /// Add the labelled edge `u → v`.
    pub fn add_edge(&mut self, u: usize, v: usize, label: L) {
        assert!(
            u < self.num_nodes && v < self.num_nodes,
            "edge endpoint out of range"
        );
        self.edges.push((u as u32, v as u32, label));
    }

    /// Number of nodes so far.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges so far.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Pack the edge arena into an immutable [`Csr`].
    ///
    /// Stable by construction: within each source node, targets appear in
    /// insertion order; within each target node, sources appear in insertion
    /// order (matching the legacy adjacency list's push order on both sides).
    #[must_use]
    pub fn freeze(self) -> Csr<L> {
        let n = self.num_nodes;
        let m = self.edges.len();

        let mut succ_off = vec![0u32; n + 1];
        let mut pred_off = vec![0u32; n + 1];
        for &(u, v, _) in &self.edges {
            succ_off[u as usize + 1] += 1;
            pred_off[v as usize + 1] += 1;
        }
        for i in 0..n {
            succ_off[i + 1] += succ_off[i];
            pred_off[i + 1] += pred_off[i];
        }

        let mut succ = vec![0u32; m];
        let mut pred = vec![0u32; m];
        let mut scur: Vec<u32> = succ_off[..n].to_vec();
        let mut pcur: Vec<u32> = pred_off[..n].to_vec();
        // Labels land in CSR slot order; Vec<Option<L>> sidesteps the need
        // for L: Default without unsafe.
        let mut labels_slots: Vec<Option<L>> = (0..m).map(|_| None).collect();
        for (u, v, l) in self.edges {
            let s = scur[u as usize];
            scur[u as usize] += 1;
            succ[s as usize] = v;
            labels_slots[s as usize] = Some(l);
            let p = pcur[v as usize];
            pcur[v as usize] += 1;
            pred[p as usize] = u;
        }
        let labels = labels_slots
            .into_iter()
            .map(|l| l.expect("every CSR slot filled"))
            .collect();

        Csr {
            succ_off,
            succ,
            labels,
            pred_off,
            pred,
        }
    }
}

impl GraphBuilder<()> {
    /// Convenience: add an unlabelled edge.
    pub fn add_arc(&mut self, u: usize, v: usize) {
        self.add_edge(u, v, ());
    }
}

/// An immutable directed graph in compressed-sparse-row form, with one label
/// of type `L` per edge and `u32` node ids.
///
/// Both forward and reverse adjacency are stored, since Tarjan SCC needs
/// only forward edges but dominators and backward reachability need
/// predecessors. Built via [`GraphBuilder`]; all node parameters are
/// `usize` for ergonomic indexing while storage stays `u32`.
#[derive(Clone, Debug)]
pub struct Csr<L = ()> {
    /// `succ[succ_off[u]..succ_off[u+1]]` are the targets of `u`'s out-edges.
    succ_off: Vec<u32>,
    succ: Vec<u32>,
    /// `labels[i]` labels the edge whose target is `succ[i]`.
    labels: Vec<L>,
    /// `pred[pred_off[v]..pred_off[v+1]]` are the sources of `v`'s in-edges.
    pred_off: Vec<u32>,
    pred: Vec<u32>,
}

impl<L> Default for Csr<L> {
    fn default() -> Self {
        GraphBuilder::new().freeze()
    }
}

impl<L> Csr<L> {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        Csr::default()
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.succ_off.len() - 1
    }

    /// Number of edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.succ.len()
    }

    /// Outgoing edge targets of `u`, in edge insertion order.
    #[must_use]
    pub fn successors(&self, u: usize) -> &[u32] {
        &self.succ[self.succ_off[u] as usize..self.succ_off[u + 1] as usize]
    }

    /// Labels of `u`'s outgoing edges, parallel to [`Csr::successors`].
    #[must_use]
    pub fn successor_labels(&self, u: usize) -> &[L] {
        &self.labels[self.succ_off[u] as usize..self.succ_off[u + 1] as usize]
    }

    /// Incoming edge sources of `u`, in edge insertion order.
    #[must_use]
    pub fn predecessors(&self, u: usize) -> &[u32] {
        &self.pred[self.pred_off[u] as usize..self.pred_off[u + 1] as usize]
    }

    /// Out-degree of `u`.
    #[must_use]
    pub fn out_degree(&self, u: usize) -> usize {
        (self.succ_off[u + 1] - self.succ_off[u]) as usize
    }

    /// In-degree of `u`.
    #[must_use]
    pub fn in_degree(&self, u: usize) -> usize {
        (self.pred_off[u + 1] - self.pred_off[u]) as usize
    }

    /// Iterate all edges as `(u, v, &label)`, sources ascending and targets
    /// in per-source insertion order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, &L)> {
        (0..self.num_nodes()).flat_map(move |u| {
            self.successors(u)
                .iter()
                .zip(self.successor_labels(u))
                .map(move |(&v, l)| (u, v as usize, l))
        })
    }

    /// Does the edge `u → v` exist (with any label)?
    #[must_use]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.successors(u).contains(&(v as u32))
    }

    /// Build the node-and-edge-filtered subgraph over the *same* node
    /// indices: nodes outside `keep_node` lose all incident edges, and edges
    /// failing `keep_edge(u, v, label)` are dropped.
    ///
    /// Keeping indices stable (rather than compacting) lets callers reuse
    /// side tables.
    #[must_use]
    pub fn filtered(
        &self,
        keep_node: impl Fn(usize) -> bool,
        mut keep_edge: impl FnMut(usize, usize, &L) -> bool,
    ) -> Csr<L>
    where
        L: Clone,
    {
        let mut b = GraphBuilder::with_nodes(self.num_nodes());
        for (u, v, l) in self.edges() {
            if keep_node(u) && keep_node(v) && keep_edge(u, v, l) {
                b.add_edge(u, v, l.clone());
            }
        }
        b.freeze()
    }

    /// The reverse graph (labels preserved).
    #[must_use]
    pub fn reversed(&self) -> Csr<L>
    where
        L: Clone,
    {
        let mut b = GraphBuilder::with_nodes(self.num_nodes());
        for (u, v, l) in self.edges() {
            b.add_edge(v, u, l.clone());
        }
        b.freeze()
    }

    /// Forward reachability from `start` (inclusive), honouring `enabled`
    /// edges only.
    #[must_use]
    pub fn reachable_from_filtered(
        &self,
        start: usize,
        mut enabled: impl FnMut(usize, usize, &L) -> bool,
    ) -> BitSet {
        let mut seen = BitSet::new(self.num_nodes());
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(u) = stack.pop() {
            let succ = self.successors(u);
            let labels = self.successor_labels(u);
            for (i, &v) in succ.iter().enumerate() {
                let v = v as usize;
                if enabled(u, v, &labels[i]) && seen.insert(v) {
                    stack.push(v);
                }
            }
        }
        seen
    }

    /// Forward reachability from `start` (inclusive).
    #[must_use]
    pub fn reachable_from(&self, start: usize) -> BitSet {
        self.reachable_from_filtered(start, |_, _, _| true)
    }

    /// Forward reachability from every node in `starts` (inclusive).
    #[must_use]
    pub fn reachable_from_set(&self, starts: &BitSet) -> BitSet {
        let mut seen = BitSet::new(self.num_nodes());
        let mut stack: Vec<usize> = starts.iter().collect();
        for &s in &stack {
            seen.insert(s);
        }
        while let Some(u) = stack.pop() {
            for &v in self.successors(u) {
                let v = v as usize;
                if seen.insert(v) {
                    stack.push(v);
                }
            }
        }
        seen
    }
}

impl Csr<()> {
    /// Build an unlabelled graph from an edge list over `n` nodes.
    #[must_use]
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut b = GraphBuilder::with_nodes(n);
        for &(u, v) in edges {
            b.add_arc(u, v);
        }
        b.freeze()
    }
}

impl<L> GraphView for Csr<L> {
    fn num_nodes(&self) -> usize {
        Csr::num_nodes(self)
    }

    fn num_edges(&self) -> usize {
        Csr::num_edges(self)
    }

    fn successors(&self, u: usize) -> &[u32] {
        Csr::successors(self, u)
    }

    fn predecessors(&self, u: usize) -> &[u32] {
        Csr::predecessors(self, u)
    }

    fn out_degree(&self, u: usize) -> usize {
        Csr::out_degree(self, u)
    }

    fn in_degree(&self, u: usize) -> usize {
        Csr::in_degree(self, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut b: GraphBuilder<char> = GraphBuilder::with_nodes(3);
        let d = b.add_node();
        b.add_edge(0, 1, 'a');
        b.add_edge(1, 2, 'b');
        b.add_edge(2, d, 'c');
        b.add_edge(0, d, 'd');
        let g = b.freeze();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(d), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.predecessors(2), &[1]);
        assert_eq!(g.successors(0), &[1, 3]);
        assert_eq!(g.successor_labels(0), &['a', 'd']);
    }

    #[test]
    fn freeze_preserves_insertion_order() {
        // Interleave sources so the counting sort has work to do; per-source
        // order must still be insertion order.
        let mut b: GraphBuilder<u32> = GraphBuilder::with_nodes(3);
        b.add_edge(2, 0, 10);
        b.add_edge(0, 2, 20);
        b.add_edge(2, 1, 30);
        b.add_edge(0, 1, 40);
        b.add_edge(2, 2, 50);
        let g = b.freeze();
        assert_eq!(g.successors(0), &[2, 1]);
        assert_eq!(g.successor_labels(0), &[20, 40]);
        assert_eq!(g.successors(2), &[0, 1, 2]);
        assert_eq!(g.successor_labels(2), &[10, 30, 50]);
        // Predecessors in per-target insertion order too.
        assert_eq!(g.predecessors(1), &[2, 0]);
        assert_eq!(g.predecessors(2), &[0, 2]);
    }

    #[test]
    fn edges_iterates_sources_ascending() {
        let mut b: GraphBuilder<()> = GraphBuilder::with_nodes(3);
        b.add_arc(1, 0);
        b.add_arc(0, 2);
        b.add_arc(1, 2);
        let g = b.freeze();
        let e: Vec<(usize, usize)> = g.edges().map(|(u, v, ())| (u, v)).collect();
        assert_eq!(e, vec![(0, 2), (1, 0), (1, 2)]);
    }

    #[test]
    fn reachability_basic() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(g.reachable_from(0).to_vec(), vec![0, 1, 2]);
        assert_eq!(g.reachable_from(3).to_vec(), vec![3, 4]);
    }

    #[test]
    fn reachability_with_edge_filter() {
        let mut b: GraphBuilder<bool> = GraphBuilder::with_nodes(3);
        b.add_edge(0, 1, true);
        b.add_edge(1, 2, false);
        let g = b.freeze();
        let r = g.reachable_from_filtered(0, |_, _, &ok| ok);
        assert_eq!(r.to_vec(), vec![0, 1]);
    }

    #[test]
    fn reachable_from_set_unions_sources() {
        let g = Csr::from_edges(6, &[(0, 1), (2, 3), (4, 5)]);
        let mut s = BitSet::new(6);
        s.insert(0);
        s.insert(2);
        let r = g.reachable_from_set(&s);
        assert_eq!(r.to_vec(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn filtered_drops_nodes_and_edges() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let f = g.filtered(|n| n != 2, |_, _, _| true);
        assert_eq!(f.num_edges(), 2); // 0→1 and 3→0 survive
        assert!(f.has_edge(0, 1));
        assert!(f.has_edge(3, 0));
    }

    #[test]
    fn reversed_flips_edges() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let r = g.reversed();
        assert!(r.has_edge(1, 0));
        assert!(r.has_edge(2, 1));
        assert!(!r.has_edge(0, 1));
    }

    #[test]
    fn empty_graph() {
        let g: Csr<()> = Csr::new();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }
}
