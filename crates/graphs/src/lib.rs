//! From-scratch graph algorithms used throughout the `iwa` workspace.
//!
//! The reproduced paper is itself a graph-algorithms paper (depth-first
//! search for cycles, strongly connected components, control-flow dominance,
//! reachability), so rather than pulling in an external graph library this
//! crate implements the needed substrate directly:
//!
//! * [`Csr`] / [`GraphBuilder`] — a compressed-sparse-row directed graph
//!   with typed edge labels (the CLG tags its edges
//!   `Internal`/`Control`/`Sync`), built once from a flat edge arena and
//!   immutable thereafter;
//! * [`GraphView`] — the minimal read-only adjacency trait every algorithm
//!   is written against, so alternative representations (test references,
//!   condensations) share the same algorithm code;
//! * [`BitSet`] / [`BitMatrix`] — dense bit collections backing reachability
//!   and the `precedes` relation of the ordering dataflow; the single
//!   node-set representation of the workspace;
//! * [`dfs`] — iterative depth-first traversals;
//! * [`scc`] — iterative Tarjan strongly-connected components with an
//!   `Option<&BitSet>` node mask (the per-head incremental restriction of
//!   the refined algorithm);
//! * [`dominators`] — Cooper–Harvey–Kennedy dominator trees;
//! * [`topo`] — Kahn topological sort / acyclicity;
//! * [`cycles`] — budget-bounded simple-cycle enumeration (Johnson-style),
//!   used only by the *exact* exponential checker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod csr;
pub mod cycles;
pub mod dfs;
pub mod dominators;
pub mod scc;
pub mod topo;
pub mod view;

pub use bitset::{BitMatrix, BitSet};
pub use csr::{Csr, GraphBuilder};
pub use dominators::Dominators;
pub use scc::Scc;
pub use view::GraphView;
