//! From-scratch graph algorithms used throughout the `iwa` workspace.
//!
//! The reproduced paper is itself a graph-algorithms paper (depth-first
//! search for cycles, strongly connected components, control-flow dominance,
//! reachability), so rather than pulling in an external graph library this
//! crate implements the needed substrate directly:
//!
//! * [`DiGraph`] — a compact adjacency-list directed graph with typed edge
//!   labels (the CLG tags its edges `Internal`/`Control`/`Sync`);
//! * [`BitSet`] / [`BitMatrix`] — dense bit collections backing reachability
//!   and the `precedes` relation of the ordering dataflow;
//! * [`dfs`] — iterative depth-first traversals with edge filtering;
//! * [`scc`] — iterative Tarjan strongly-connected components;
//! * [`dominators`] — Cooper–Harvey–Kennedy dominator trees;
//! * [`topo`] — Kahn topological sort / acyclicity;
//! * [`cycles`] — budget-bounded simple-cycle enumeration (Johnson-style),
//!   used only by the *exact* exponential checker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod cycles;
pub mod dfs;
pub mod digraph;
pub mod dominators;
pub mod scc;
pub mod topo;

pub use bitset::{BitMatrix, BitSet};
pub use digraph::DiGraph;
pub use dominators::Dominators;
pub use scc::Scc;
