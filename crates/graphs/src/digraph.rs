//! A compact directed graph with typed edge labels.

use crate::BitSet;

/// A directed graph over dense node indices `0..num_nodes`, with one label of
/// type `L` per edge.
///
/// Parallel edges and self-loops are permitted (the CLG never produces them,
/// but raw sync graphs built for Theorem 3 may be irregular). Both forward
/// and reverse adjacency are maintained, since Tarjan SCC needs only forward
/// edges but dominators and backward reachability need predecessors.
#[derive(Clone, Debug)]
pub struct DiGraph<L = ()> {
    succs: Vec<Vec<(u32, L)>>,
    preds: Vec<Vec<u32>>,
    num_edges: usize,
}

impl<L> Default for DiGraph<L> {
    fn default() -> Self {
        DiGraph {
            succs: Vec::new(),
            preds: Vec::new(),
            num_edges: 0,
        }
    }
}

impl<L> DiGraph<L> {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        DiGraph::default()
    }

    /// An empty graph pre-sized for `n` nodes (nodes `0..n` exist).
    #[must_use]
    pub fn with_nodes(n: usize) -> Self {
        DiGraph {
            succs: (0..n).map(|_| Vec::new()).collect(),
            preds: (0..n).map(|_| Vec::new()).collect(),
            num_edges: 0,
        }
    }

    /// Add a fresh node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        self.succs.len() - 1
    }

    /// Add the labelled edge `u → v`.
    pub fn add_edge(&mut self, u: usize, v: usize, label: L) {
        assert!(u < self.succs.len() && v < self.succs.len(), "edge endpoint out of range");
        self.succs[u].push((v as u32, label));
        self.preds[v].push(u as u32);
        self.num_edges += 1;
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.succs.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Outgoing `(target, label)` pairs of `u`, in insertion order.
    #[must_use]
    pub fn successors(&self, u: usize) -> &[(u32, L)] {
        &self.succs[u]
    }

    /// Incoming sources of `u`, in insertion order.
    #[must_use]
    pub fn predecessors(&self, u: usize) -> &[u32] {
        &self.preds[u]
    }

    /// Out-degree of `u`.
    #[must_use]
    pub fn out_degree(&self, u: usize) -> usize {
        self.succs[u].len()
    }

    /// In-degree of `u`.
    #[must_use]
    pub fn in_degree(&self, u: usize) -> usize {
        self.preds[u].len()
    }

    /// Iterate all edges as `(u, v, &label)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, &L)> {
        self.succs.iter().enumerate().flat_map(|(u, out)| {
            out.iter().map(move |(v, l)| (u, *v as usize, l))
        })
    }

    /// Does the edge `u → v` exist (with any label)?
    #[must_use]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.succs[u].iter().any(|(t, _)| *t as usize == v)
    }

    /// Build the node-and-edge-filtered subgraph over the *same* node
    /// indices: nodes outside `keep_node` lose all incident edges, and edges
    /// failing `keep_edge(u, v, label)` are dropped.
    ///
    /// Keeping indices stable (rather than compacting) lets callers reuse
    /// side tables; the refined algorithm (paper §4.2) calls this once per
    /// hypothesised head node.
    #[must_use]
    pub fn filtered(
        &self,
        keep_node: impl Fn(usize) -> bool,
        mut keep_edge: impl FnMut(usize, usize, &L) -> bool,
    ) -> DiGraph<L>
    where
        L: Clone,
    {
        let mut g = DiGraph::with_nodes(self.num_nodes());
        for (u, v, l) in self.edges() {
            if keep_node(u) && keep_node(v) && keep_edge(u, v, l) {
                g.add_edge(u, v, l.clone());
            }
        }
        g
    }

    /// The reverse graph (labels preserved).
    #[must_use]
    pub fn reversed(&self) -> DiGraph<L>
    where
        L: Clone,
    {
        let mut g = DiGraph::with_nodes(self.num_nodes());
        for (u, v, l) in self.edges() {
            g.add_edge(v, u, l.clone());
        }
        g
    }

    /// Forward reachability from `start` (inclusive), honouring `enabled`
    /// edges only.
    #[must_use]
    pub fn reachable_from_filtered(
        &self,
        start: usize,
        mut enabled: impl FnMut(usize, usize, &L) -> bool,
    ) -> BitSet {
        let mut seen = BitSet::new(self.num_nodes());
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(u) = stack.pop() {
            for (v, l) in self.successors(u) {
                let v = *v as usize;
                if enabled(u, v, l) && seen.insert(v) {
                    stack.push(v);
                }
            }
        }
        seen
    }

    /// Forward reachability from `start` (inclusive).
    #[must_use]
    pub fn reachable_from(&self, start: usize) -> BitSet {
        self.reachable_from_filtered(start, |_, _, _| true)
    }

    /// Forward reachability from every node in `starts` (inclusive).
    #[must_use]
    pub fn reachable_from_set(&self, starts: &BitSet) -> BitSet {
        let mut seen = BitSet::new(self.num_nodes());
        let mut stack: Vec<usize> = starts.iter().collect();
        for &s in &stack {
            seen.insert(s);
        }
        while let Some(u) = stack.pop() {
            for (v, _) in self.successors(u) {
                let v = *v as usize;
                if seen.insert(v) {
                    stack.push(v);
                }
            }
        }
        seen
    }
}

impl DiGraph<()> {
    /// Convenience: add an unlabelled edge.
    pub fn add_arc(&mut self, u: usize, v: usize) {
        self.add_edge(u, v, ());
    }

    /// Build an unlabelled graph from an edge list over `n` nodes.
    #[must_use]
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = DiGraph::with_nodes(n);
        for &(u, v) in edges {
            g.add_arc(u, v);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g: DiGraph<char> = DiGraph::with_nodes(3);
        let d = g.add_node();
        g.add_edge(0, 1, 'a');
        g.add_edge(1, 2, 'b');
        g.add_edge(2, d, 'c');
        g.add_edge(0, d, 'd');
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(d), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.predecessors(2), &[1]);
    }

    #[test]
    fn reachability_basic() {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let r = g.reachable_from(0);
        assert_eq!(r.to_vec(), vec![0, 1, 2]);
        let r2 = g.reachable_from(3);
        assert_eq!(r2.to_vec(), vec![3, 4]);
    }

    #[test]
    fn reachability_with_edge_filter() {
        let mut g: DiGraph<bool> = DiGraph::with_nodes(3);
        g.add_edge(0, 1, true);
        g.add_edge(1, 2, false);
        let r = g.reachable_from_filtered(0, |_, _, &ok| ok);
        assert_eq!(r.to_vec(), vec![0, 1]);
    }

    #[test]
    fn reachable_from_set_unions_sources() {
        let g = DiGraph::from_edges(6, &[(0, 1), (2, 3), (4, 5)]);
        let starts: BitSet = [0usize, 2].into_iter().collect();
        // Universe mismatch is fine: reachable_from_set reads indices only.
        let mut s = BitSet::new(6);
        for i in starts.iter() {
            s.insert(i);
        }
        let r = g.reachable_from_set(&s);
        assert_eq!(r.to_vec(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn filtered_drops_nodes_and_edges() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let f = g.filtered(|n| n != 2, |_, _, _| true);
        assert_eq!(f.num_edges(), 2); // 0→1 and 3→0 survive
        assert!(f.has_edge(0, 1));
        assert!(f.has_edge(3, 0));
    }

    #[test]
    fn reversed_flips_edges() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let r = g.reversed();
        assert!(r.has_edge(1, 0));
        assert!(r.has_edge(2, 1));
        assert!(!r.has_edge(0, 1));
    }
}
