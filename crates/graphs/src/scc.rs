//! Strongly connected components (iterative Tarjan) with optional node
//! masking.
//!
//! The refined deadlock-detection algorithm (paper §4.2) runs one SCC
//! search per hypothesised head node over a masked CLG, asking whether the
//! head's component is non-trivial. Tarjan gives all components in a single
//! `O(N + E)` pass, matching the per-iteration cost the paper claims. The
//! mask (an `Option<&BitSet>`) is the one construction knob: `None` is the
//! whole-graph decomposition shared across heads, `Some(mask)` is the
//! per-head incremental restriction — both go through the same entry point
//! so there is exactly one Tarjan implementation to trust.

use crate::view::GraphView;
use crate::{BitSet, Csr, GraphBuilder};

/// The strongly-connected-component decomposition of a graph.
#[derive(Clone, Debug)]
pub struct Scc {
    /// `comp[v]` = component index of node `v` (dense, `0..num_components`).
    /// Components are numbered in reverse topological order of the
    /// condensation (Tarjan's natural output order).
    pub comp: Vec<u32>,
    /// Members of each component.
    pub members: Vec<Vec<u32>>,
}

impl Scc {
    /// Compute the SCCs of `g`, optionally restricted to the subgraph
    /// induced by `mask`.
    ///
    /// With `mask = None` every node participates. With `mask = Some(m)`,
    /// nodes outside `m` are placed in singleton components (in node order)
    /// and never traversed — this is the per-head incremental restriction of
    /// the shared whole-graph decomposition.
    #[must_use]
    pub fn compute<G: GraphView + ?Sized>(g: &G, mask: Option<&BitSet>) -> Scc {
        SccState::run(g, mask)
    }

    /// Number of components.
    #[must_use]
    pub fn num_components(&self) -> usize {
        self.members.len()
    }

    /// Component index containing node `v`.
    #[must_use]
    pub fn component_of(&self, v: usize) -> usize {
        self.comp[v] as usize
    }

    /// Is `v`'s component non-trivial — more than one node, or a single node
    /// with a self-loop (checked against `g`)?
    ///
    /// A non-trivial component containing a hypothesised head node is what
    /// the refined algorithm reports as a possible deadlock.
    #[must_use]
    pub fn in_nontrivial_component<G: GraphView + ?Sized>(&self, g: &G, v: usize) -> bool {
        let c = self.component_of(v);
        if self.members[c].len() > 1 {
            return true;
        }
        g.successors(v).contains(&(v as u32))
    }

    /// Are `u` and `v` in the same component?
    #[must_use]
    pub fn same_component(&self, u: usize, v: usize) -> bool {
        self.comp[u] == self.comp[v]
    }

    /// All components with more than one member (or a self-loop), as member
    /// lists. Needs `g` to detect self-loops.
    #[must_use]
    pub fn nontrivial_components<G: GraphView + ?Sized>(&self, g: &G) -> Vec<Vec<u32>> {
        self.members
            .iter()
            .filter(|m| {
                m.len() > 1
                    || (m.len() == 1 && {
                        let v = m[0] as usize;
                        g.successors(v).contains(&m[0])
                    })
            })
            .cloned()
            .collect()
    }

    /// The condensation DAG: one node per component, edges between distinct
    /// components wherever `g` has an edge.
    #[must_use]
    pub fn condensation<G: GraphView + ?Sized>(&self, g: &G) -> Csr<()> {
        let mut dag = GraphBuilder::with_nodes(self.num_components());
        let mut seen = std::collections::HashSet::new();
        for u in 0..g.num_nodes() {
            for &v in g.successors(u) {
                let (cu, cv) = (self.comp[u], self.comp[v as usize]);
                if cu != cv && seen.insert((cu, cv)) {
                    dag.add_arc(cu as usize, cv as usize);
                }
            }
        }
        dag.freeze()
    }
}

/// Iterative Tarjan. Kept out of the public API.
struct SccState {
    index: Vec<u32>,
    lowlink: Vec<u32>,
    on_stack: BitSet,
    stack: Vec<u32>,
    next_index: u32,
    comp: Vec<u32>,
    members: Vec<Vec<u32>>,
}

const UNVISITED: u32 = u32::MAX;

impl SccState {
    fn run<G: GraphView + ?Sized>(g: &G, mask: Option<&BitSet>) -> Scc {
        let n = g.num_nodes();
        let mut st = SccState {
            index: vec![UNVISITED; n],
            lowlink: vec![0; n],
            on_stack: BitSet::new(n),
            stack: Vec::new(),
            next_index: 0,
            comp: vec![0; n],
            members: Vec::new(),
        };
        let is_enabled = |v: usize| mask.is_none_or(|e| e.contains(v));
        for v in 0..n {
            if st.index[v] == UNVISITED {
                if is_enabled(v) {
                    st.visit(g, v, &is_enabled);
                } else {
                    // Disabled nodes become singleton components directly.
                    st.index[v] = st.next_index;
                    st.next_index += 1;
                    st.comp[v] = st.members.len() as u32;
                    st.members.push(vec![v as u32]);
                }
            }
        }
        Scc {
            comp: st.comp,
            members: st.members,
        }
    }

    fn visit<G: GraphView + ?Sized>(
        &mut self,
        g: &G,
        root: usize,
        is_enabled: &impl Fn(usize) -> bool,
    ) {
        // Frame: (node, next successor index).
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        self.index[root] = self.next_index;
        self.lowlink[root] = self.next_index;
        self.next_index += 1;
        self.stack.push(root as u32);
        self.on_stack.insert(root);

        while let Some(&mut (u, ref mut next)) = call.last_mut() {
            if *next < g.out_degree(u) {
                let w = g.successors(u)[*next] as usize;
                *next += 1;
                if !is_enabled(w) {
                    continue;
                }
                if self.index[w] == UNVISITED {
                    self.index[w] = self.next_index;
                    self.lowlink[w] = self.next_index;
                    self.next_index += 1;
                    self.stack.push(w as u32);
                    self.on_stack.insert(w);
                    call.push((w, 0));
                } else if self.on_stack.contains(w) {
                    self.lowlink[u] = self.lowlink[u].min(self.index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    self.lowlink[parent] = self.lowlink[parent].min(self.lowlink[u]);
                }
                if self.lowlink[u] == self.index[u] {
                    let cid = self.members.len() as u32;
                    let mut comp_members = Vec::new();
                    loop {
                        let w = self.stack.pop().expect("tarjan stack underflow");
                        self.on_stack.remove(w as usize);
                        self.comp[w as usize] = cid;
                        comp_members.push(w);
                        if w as usize == u {
                            break;
                        }
                    }
                    self.members.push(comp_members);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_cycles_and_a_bridge() {
        // {0,1,2} cycle → {3,4} cycle, plus isolated 5
        let g = Csr::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)]);
        let scc = Scc::compute(&g, None);
        assert!(scc.same_component(0, 1) && scc.same_component(1, 2));
        assert!(scc.same_component(3, 4));
        assert!(!scc.same_component(2, 3));
        assert!(!scc.same_component(4, 5));
        assert_eq!(scc.num_components(), 3);
        assert!(scc.in_nontrivial_component(&g, 0));
        assert!(scc.in_nontrivial_component(&g, 4));
        assert!(!scc.in_nontrivial_component(&g, 5));
        assert_eq!(scc.nontrivial_components(&g).len(), 2);
    }

    #[test]
    fn self_loop_is_nontrivial() {
        let g = Csr::from_edges(2, &[(0, 0)]);
        let scc = Scc::compute(&g, None);
        assert!(scc.in_nontrivial_component(&g, 0));
        assert!(!scc.in_nontrivial_component(&g, 1));
    }

    #[test]
    fn masked_subgraph_breaks_cycle() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let all = BitSet::full(3);
        assert!(Scc::compute(&g, Some(&all)).in_nontrivial_component(&g, 0));
        let mut without1 = BitSet::full(3);
        without1.remove(1);
        let scc = Scc::compute(&g, Some(&without1));
        assert!(!scc.in_nontrivial_component(&g, 0));
        assert_eq!(scc.num_components(), 3);
    }

    #[test]
    fn masked_matches_unmasked_on_full_mask() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4)]);
        let unmasked = Scc::compute(&g, None);
        let masked = Scc::compute(&g, Some(&BitSet::full(5)));
        assert_eq!(unmasked.comp, masked.comp);
        assert_eq!(unmasked.members, masked.members);
    }

    #[test]
    fn condensation_is_a_dag_in_reverse_topo_numbering() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4)]);
        let scc = Scc::compute(&g, None);
        let dag = scc.condensation(&g);
        assert_eq!(dag.num_nodes(), 3);
        // Tarjan numbers components in reverse topological order: an edge
        // cu → cv in the condensation implies cu > cv.
        for (u, v, _) in dag.edges() {
            assert!(u > v, "condensation edge {u}→{v} violates ordering");
        }
        assert!(!crate::dfs::has_cycle_from(&dag, dag.num_nodes() - 1));
    }

    #[test]
    fn dag_has_all_singletons() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
        let scc = Scc::compute(&g, None);
        assert_eq!(scc.num_components(), 4);
        for v in 0..4 {
            assert!(!scc.in_nontrivial_component(&g, v));
        }
    }
}
