//! Dense bit sets and bit matrices.
//!
//! These back the hot inner loops of the analyses: reachability frontiers,
//! the `precedes` relation of the sequenceability dataflow (an `N×N`
//! [`BitMatrix`] closed with row-OR operations), and the co-executability
//! table. Words are `u64`; all operations are branch-light and allocation is
//! up-front.

/// A fixed-capacity dense set of `usize` values `0..len`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

const WORD_BITS: usize = 64;

impl BitSet {
    /// An empty set over the universe `0..len`.
    #[must_use]
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// A set containing every value in `0..len`.
    #[must_use]
    pub fn full(len: usize) -> Self {
        let mut s = BitSet::new(len);
        for i in 0..len {
            s.insert(i);
        }
        s
    }

    /// Size of the universe (not the cardinality; see [`BitSet::count`]).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no bit is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Insert `i`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let mask = 1u64 << b;
        let newly = self.words[w] & mask == 0;
        self.words[w] |= mask;
        newly
    }

    /// Remove `i`; returns `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let mask = 1u64 << b;
        let present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        present
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        self.words[w] & (1u64 << b) != 0
    }

    /// Number of elements in the set.
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// `self ∪= other`; returns `true` if `self` changed.
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset universe mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let before = *a;
            *a |= b;
            changed |= *a != before;
        }
        changed
    }

    /// `self ∩= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self −= other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `true` if the sets share at least one element.
    #[must_use]
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .any(|(a, b)| a & b != 0)
    }

    /// `true` if every element of `self` is in `other`.
    #[must_use]
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterate over set elements in increasing order.
    pub fn iter(&self) -> IterOnes<'_> {
        self.iter_ones()
    }

    /// Iterate over set elements in increasing order (named iterator).
    ///
    /// The one sanctioned way to walk a bitset — sweeps should use this
    /// instead of hand-rolling word/trailing-zeros loops.
    #[must_use]
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collect the elements into a `Vec` (ascending).
    #[must_use]
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the maximum element + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(len);
        for i in items {
            s.insert(i);
        }
        s
    }
}

/// Iterator over the set bits of a [`BitSet`], ascending.
///
/// Produced by [`BitSet::iter_ones`].
#[derive(Clone, Debug)]
pub struct IterOnes<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let b = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + b)
    }
}

struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(b)
    }
}

/// A dense `rows × cols` boolean matrix, each row stored as bit words.
///
/// Used for binary relations over sync-graph nodes: `precedes`,
/// reachability closures, co-executability.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitMatrix {
    words_per_row: usize,
    words: Vec<u64>,
    rows: usize,
    cols: usize,
}

impl BitMatrix {
    /// An all-zero matrix.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        let wpr = cols.div_ceil(WORD_BITS);
        BitMatrix {
            words_per_row: wpr,
            words: vec![0; wpr * rows],
            rows,
            cols,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Set `(r, c)`; returns `true` if newly set.
    pub fn set(&mut self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.rows && c < self.cols);
        let idx = r * self.words_per_row + c / WORD_BITS;
        let mask = 1u64 << (c % WORD_BITS);
        let newly = self.words[idx] & mask == 0;
        self.words[idx] |= mask;
        newly
    }

    /// Clear `(r, c)`.
    pub fn unset(&mut self, r: usize, c: usize) {
        debug_assert!(r < self.rows && c < self.cols);
        let idx = r * self.words_per_row + c / WORD_BITS;
        self.words[idx] &= !(1u64 << (c % WORD_BITS));
    }

    /// Test `(r, c)`.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.rows && c < self.cols);
        let idx = r * self.words_per_row + c / WORD_BITS;
        self.words[idx] & (1u64 << (c % WORD_BITS)) != 0
    }

    /// OR row `src` into row `dst`; returns `true` if `dst` changed.
    ///
    /// This is the workhorse of the transitive-closure and dataflow loops.
    pub fn or_row_into(&mut self, src: usize, dst: usize) -> bool {
        debug_assert!(src < self.rows && dst < self.rows);
        if src == dst {
            return false;
        }
        let wpr = self.words_per_row;
        let (s, d) = (src * wpr, dst * wpr);
        let mut changed = false;
        // Split borrow: rows never overlap because src != dst.
        let (lo, hi, flip) = if s < d { (s, d, false) } else { (d, s, true) };
        let (head, tail) = self.words.split_at_mut(hi);
        let (a, b): (&mut [u64], &mut [u64]) =
            (&mut head[lo..lo + wpr], &mut tail[..wpr]);
        let (src_row, dst_row) = if flip { (b, a) } else { (a, b) };
        for (dw, sw) in dst_row.iter_mut().zip(src_row.iter()) {
            let before = *dw;
            *dw |= *sw;
            changed |= *dw != before;
        }
        changed
    }

    /// Iterate the set columns of row `r` in increasing order.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = usize> + '_ {
        let wpr = self.words_per_row;
        let row = &self.words[r * wpr..(r + 1) * wpr];
        row.iter().enumerate().flat_map(|(wi, &w)| {
            BitIter { word: w }.map(move |b| wi * WORD_BITS + b)
        })
    }

    /// Copy row `r` out as a [`BitSet`].
    #[must_use]
    pub fn row(&self, r: usize) -> BitSet {
        let wpr = self.words_per_row;
        BitSet {
            words: self.words[r * wpr..(r + 1) * wpr].to_vec(),
            len: self.cols,
        }
    }

    /// Number of set bits in row `r`.
    #[must_use]
    pub fn row_count(&self, r: usize) -> usize {
        let wpr = self.words_per_row;
        self.words[r * wpr..(r + 1) * wpr]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(1000));
        assert_eq!(s.count(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.to_vec(), vec![0, 129]);
    }

    #[test]
    fn set_algebra() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        a.insert(70);
        b.insert(70);
        b.insert(99);
        assert!(a.intersects(&b));
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert!(!u.union_with(&b));
        assert_eq!(u.to_vec(), vec![1, 70, 99]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![70]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![1]);
        assert!(i.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn full_and_clear() {
        let mut s = BitSet::full(67);
        assert_eq!(s.count(), 67);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn iter_ones_matches_contents() {
        let mut s = BitSet::new(200);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 199] {
            s.insert(i);
        }
        assert_eq!(
            s.iter_ones().collect::<Vec<_>>(),
            vec![0, 1, 63, 64, 65, 127, 128, 199]
        );
        assert_eq!(BitSet::new(0).iter_ones().count(), 0);
        assert_eq!(BitSet::new(100).iter_ones().count(), 0);
    }

    #[test]
    fn from_iterator_sizes_universe() {
        let s: BitSet = [3usize, 9, 4].into_iter().collect();
        assert_eq!(s.len(), 10);
        assert_eq!(s.to_vec(), vec![3, 4, 9]);
    }

    #[test]
    fn matrix_set_get_or() {
        let mut m = BitMatrix::new(4, 130);
        m.set(0, 129);
        m.set(1, 0);
        m.set(1, 64);
        assert!(m.get(0, 129));
        assert!(!m.get(0, 0));
        assert!(m.or_row_into(1, 0));
        assert!(!m.or_row_into(1, 0));
        assert_eq!(m.row_iter(0).collect::<Vec<_>>(), vec![0, 64, 129]);
        assert_eq!(m.row_count(0), 3);
        m.unset(0, 64);
        assert!(!m.get(0, 64));
        assert_eq!(m.row(1).to_vec(), vec![0, 64]);
    }

    #[test]
    fn or_row_into_works_in_both_directions() {
        let mut m = BitMatrix::new(3, 10);
        m.set(2, 5);
        assert!(m.or_row_into(2, 0)); // src index above dst
        assert!(m.get(0, 5));
        m.set(0, 7);
        assert!(m.or_row_into(0, 2)); // src index below dst
        assert!(m.get(2, 7));
        assert!(!m.or_row_into(1, 1)); // self-OR is a no-op
    }
}
