//! Topological sorting and acyclicity (Kahn's algorithm).

use crate::view::GraphView;

/// A topological order of all nodes, or `None` if the graph has a cycle.
#[must_use]
pub fn topological_sort<G: GraphView + ?Sized>(g: &G) -> Option<Vec<usize>> {
    let n = g.num_nodes();
    let mut in_deg: Vec<usize> = (0..n).map(|v| g.in_degree(v)).collect();
    let mut queue: Vec<usize> = (0..n).filter(|&v| in_deg[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for &w in g.successors(v) {
            let w = w as usize;
            in_deg[w] -= 1;
            if in_deg[w] == 0 {
                queue.push(w);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Is the whole graph acyclic?
#[must_use]
pub fn is_acyclic<G: GraphView + ?Sized>(g: &G) -> bool {
    topological_sort(g).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Csr, GraphBuilder};

    #[test]
    fn sorts_a_dag() {
        let g = Csr::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let order = topological_sort(&g).expect("dag");
        let pos = |v: usize| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(0) < pos(1) && pos(0) < pos(2));
        assert!(pos(1) < pos(3) && pos(2) < pos(3));
    }

    #[test]
    fn rejects_cycles() {
        let g = Csr::from_edges(2, &[(0, 1), (1, 0)]);
        assert!(topological_sort(&g).is_none());
        assert!(!is_acyclic(&g));
    }

    #[test]
    fn empty_and_isolated() {
        let g = Csr::from_edges(3, &[]);
        assert!(is_acyclic(&g));
        assert_eq!(topological_sort(&g).unwrap().len(), 3);
        let empty: Csr<()> = Csr::new();
        assert!(is_acyclic(&empty));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b: GraphBuilder<()> = GraphBuilder::with_nodes(1);
        b.add_arc(0, 0);
        assert!(!is_acyclic(&b.freeze()));
    }
}
