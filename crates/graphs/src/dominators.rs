//! Dominator trees (Cooper–Harvey–Kennedy "engineered" algorithm).
//!
//! Rule 1 of the paper's ordering dataflow (§4.1) seeds the `precedes`
//! relation from control-flow dominance: *"if `r` dominates `s` in the
//! control flow graph of their task, then `r` must precede `s`"*. This
//! module computes immediate dominators per task CFG.

use crate::dfs::reverse_postorder;
use crate::view::GraphView;

/// Immediate-dominator table for the nodes reachable from an entry node.
#[derive(Clone, Debug)]
pub struct Dominators {
    /// `idom[v]` = immediate dominator of `v`, or `usize::MAX` if `v` is the
    /// entry or unreachable.
    idom: Vec<usize>,
    entry: usize,
    /// Reverse postorder number of each node (`usize::MAX` if unreachable).
    rpo_number: Vec<usize>,
}

const NONE: usize = usize::MAX;

impl Dominators {
    /// Compute dominators of `g` from `entry` using the iterative
    /// Cooper–Harvey–Kennedy scheme.
    #[must_use]
    pub fn compute<G: GraphView + ?Sized>(g: &G, entry: usize) -> Dominators {
        let n = g.num_nodes();
        let rpo = reverse_postorder(g, entry);
        let mut rpo_number = vec![NONE; n];
        for (i, &v) in rpo.iter().enumerate() {
            rpo_number[v] = i;
        }
        let mut idom = vec![NONE; n];
        idom[entry] = entry;

        let intersect = |idom: &[usize], rpo_number: &[usize], mut a: usize, mut b: usize| {
            while a != b {
                while rpo_number[a] > rpo_number[b] {
                    a = idom[a];
                }
                while rpo_number[b] > rpo_number[a] {
                    b = idom[b];
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &v in rpo.iter().skip(1) {
                let mut new_idom = NONE;
                for &p in g.predecessors(v) {
                    let p = p as usize;
                    if idom[p] == NONE {
                        continue; // predecessor not yet processed / unreachable
                    }
                    new_idom = if new_idom == NONE {
                        p
                    } else {
                        intersect(&idom, &rpo_number, new_idom, p)
                    };
                }
                if new_idom != NONE && idom[v] != new_idom {
                    idom[v] = new_idom;
                    changed = true;
                }
            }
        }

        Dominators {
            idom,
            entry,
            rpo_number,
        }
    }

    /// The entry node.
    #[must_use]
    pub fn entry(&self) -> usize {
        self.entry
    }

    /// Immediate dominator of `v` (`None` for the entry or unreachable
    /// nodes).
    #[must_use]
    pub fn idom(&self, v: usize) -> Option<usize> {
        if v == self.entry || self.idom[v] == NONE {
            None
        } else {
            Some(self.idom[v])
        }
    }

    /// Is `v` reachable from the entry?
    #[must_use]
    pub fn is_reachable(&self, v: usize) -> bool {
        self.rpo_number[v] != NONE
    }

    /// Does `a` dominate `b`? (Reflexive: every node dominates itself.)
    ///
    /// Walks the dominator tree from `b` upward; tree height is at most the
    /// CFG depth, which is small for structured programs.
    #[must_use]
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut v = b;
        loop {
            if v == a {
                return true;
            }
            if v == self.entry {
                return false;
            }
            v = self.idom[v];
        }
    }

    /// All nodes dominated by `a` (including `a`), among reachable nodes.
    #[must_use]
    pub fn dominated_by(&self, a: usize) -> Vec<usize> {
        (0..self.idom.len())
            .filter(|&v| self.is_reachable(v) && self.dominates(a, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Csr;

    /// Classic diamond: entry 0, branch 1/2, join 3, exit 4.
    fn diamond() -> Csr<()> {
        Csr::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
    }

    #[test]
    fn diamond_dominators() {
        let d = Dominators::compute(&diamond(), 0);
        assert_eq!(d.idom(1), Some(0));
        assert_eq!(d.idom(2), Some(0));
        assert_eq!(d.idom(3), Some(0)); // join is dominated by the fork, not a branch
        assert_eq!(d.idom(4), Some(3));
        assert!(d.dominates(0, 4));
        assert!(d.dominates(3, 4));
        assert!(!d.dominates(1, 3));
        assert!(d.dominates(2, 2)); // reflexive
    }

    #[test]
    fn entry_has_no_idom() {
        let d = Dominators::compute(&diamond(), 0);
        assert_eq!(d.idom(0), None);
        assert_eq!(d.entry(), 0);
    }

    #[test]
    fn unreachable_nodes() {
        let g = Csr::from_edges(4, &[(0, 1), (2, 3)]);
        let d = Dominators::compute(&g, 0);
        assert!(!d.is_reachable(2));
        assert_eq!(d.idom(3), None);
        assert!(!d.dominates(0, 3));
        assert!(!d.dominates(2, 3)); // both outside the reachable region
    }

    #[test]
    fn loop_with_back_edge() {
        // 0 → 1 → 2 → 1 (back edge), 2 → 3
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let d = Dominators::compute(&g, 0);
        assert_eq!(d.idom(1), Some(0));
        assert_eq!(d.idom(2), Some(1));
        assert_eq!(d.idom(3), Some(2));
        assert!(d.dominates(1, 3));
    }

    #[test]
    fn dominated_by_lists_subtree() {
        let d = Dominators::compute(&diamond(), 0);
        assert_eq!(d.dominated_by(3), vec![3, 4]);
        assert_eq!(d.dominated_by(0).len(), 5);
    }
}
