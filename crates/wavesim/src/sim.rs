//! Monte-Carlo execution (random scheduling and branch choices).
//!
//! One random run of the wave semantics, recording per-task traces. Traces
//! feed `iwa_tasklang::transforms::linearize`, giving concrete `P_E`
//! programs for the Lemma 1 experiments; the runner is also a cheap
//! anomaly-hunting fuzzer for large programs where exhaustive exploration
//! is out of reach.

use crate::explore::{initial_waves, next_waves};
use crate::wave::{Wave, DONE};
use iwa_core::{IwaError, Rendezvous, TaskId};
use iwa_syncgraph::SyncGraph;
use rand::seq::SliceRandom;
use rand::Rng;

/// How a simulated run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimOutcome {
    /// All tasks reached `e`.
    Completed,
    /// The run reached an anomalous wave.
    Anomalous,
    /// The step budget ran out first (possible with loops).
    OutOfSteps,
}

/// The record of one simulated execution.
#[derive(Clone, Debug)]
pub struct Trace {
    /// How the run ended.
    pub outcome: SimOutcome,
    /// Number of rendezvous fired.
    pub steps: usize,
    /// The final wave.
    pub final_wave: Wave,
    /// Per task: the rendezvous nodes executed, in order (sync-graph node
    /// indices).
    pub executed: Vec<Vec<usize>>,
}

impl Trace {
    /// Convert the per-task node traces into the `(Rendezvous, label)` form
    /// `iwa_tasklang::transforms::linearize` consumes.
    #[must_use]
    pub fn task_traces(&self, sg: &SyncGraph) -> Vec<Vec<(Rendezvous, Option<String>)>> {
        self.executed
            .iter()
            .map(|nodes| {
                nodes
                    .iter()
                    .map(|&n| {
                        let d = sg.node(n);
                        (d.rendezvous, d.label.clone())
                    })
                    .collect()
            })
            .collect()
    }
}

/// Run one random execution: random initial branch choices, then repeatedly
/// fire a uniformly random enabled rendezvous (with random successor branch
/// choices) until termination, anomaly, or `max_steps`.
#[allow(clippy::needless_range_loop)] // t indexes wave slots and traces in step
pub fn simulate(
    sg: &SyncGraph,
    rng: &mut impl Rng,
    max_steps: usize,
) -> Result<Trace, IwaError> {
    let init = initial_waves(sg)?;
    let mut wave = init
        .choose(rng)
        .expect("at least one initial wave")
        .clone();
    let mut executed: Vec<Vec<usize>> = vec![Vec::new(); sg.num_tasks];
    let mut steps = 0usize;

    loop {
        if wave.all_done() {
            return Ok(Trace {
                outcome: SimOutcome::Completed,
                steps,
                final_wave: wave,
                executed,
            });
        }
        if steps >= max_steps {
            return Ok(Trace {
                outcome: SimOutcome::OutOfSteps,
                steps,
                final_wave: wave,
                executed,
            });
        }
        let succs = next_waves(sg, &wave);
        if succs.is_empty() {
            return Ok(Trace {
                outcome: SimOutcome::Anomalous,
                steps,
                final_wave: wave,
                executed,
            });
        }
        let next = succs.choose(rng).expect("nonempty").clone();
        // Record which tasks moved (their previous slots executed).
        for t in 0..sg.num_tasks {
            let task = TaskId(t as u32);
            if wave.slot(task) != next.slot(task) {
                let prev = wave.slot(task);
                debug_assert_ne!(prev, DONE);
                executed[t].push(prev as usize);
            }
        }
        wave = next;
        steps += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use iwa_tasklang::parse;

    fn sg_of(src: &str) -> SyncGraph {
        SyncGraph::from_program(&parse(src).unwrap())
    }

    #[test]
    fn clean_exchange_completes_with_full_traces() {
        let sg = sg_of("task t1 { send t2.a; accept b; } task t2 { accept a; send t1.b; }");
        let mut rng = StdRng::seed_from_u64(7);
        let t = simulate(&sg, &mut rng, 100).unwrap();
        assert_eq!(t.outcome, SimOutcome::Completed);
        assert_eq!(t.steps, 2);
        assert_eq!(t.executed[0].len(), 2);
        assert_eq!(t.executed[1].len(), 2);
        let traces = t.task_traces(&sg);
        assert!(traces[0][0].0.sign.is_send());
    }

    #[test]
    fn crossed_sends_always_anomalous() {
        let sg = sg_of("task t1 { send t2.a; accept b; } task t2 { send t1.b; accept a; }");
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let t = simulate(&sg, &mut rng, 100).unwrap();
            assert_eq!(t.outcome, SimOutcome::Anomalous);
            assert_eq!(t.steps, 0);
        }
    }

    #[test]
    fn loops_hit_the_step_budget() {
        let sg = sg_of("task t1 { repeat { send t2.a; } } task t2 { repeat { accept a; } }");
        let mut rng = StdRng::seed_from_u64(3);
        let t = simulate(&sg, &mut rng, 10).unwrap();
        // Either someone exited their loop early and the other stalls, or
        // we looped until the budget — both are possible under random
        // choices; what cannot happen is an uneventful completion with zero
        // steps.
        assert!(t.steps >= 1);
    }

    #[test]
    fn traces_linearize_back_into_programs() {
        let p = parse("task t1 { while { send t2.a; } } task t2 { while { accept a; } }")
            .unwrap();
        let sg = SyncGraph::from_program(&p);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let t = simulate(&sg, &mut rng, 50).unwrap();
            let pe = iwa_tasklang::transforms::linearize(&p, t.task_traces(&sg));
            assert!(pe.is_straight_line());
            assert_eq!(
                pe.tasks[0].body.len(),
                t.executed[0].len(),
                "trace lengths preserved"
            );
        }
    }

    #[test]
    fn deterministic_given_a_seed() {
        let sg = sg_of(
            "task t1 { if { send t2.a; } else { send t2.b; } } task t2 { accept a; accept b; }",
        );
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            simulate(&sg, &mut rng, 100).unwrap()
        };
        let (a, b) = (run(42), run(42));
        assert_eq!(a.final_wave, b.final_wave);
        assert_eq!(a.executed, b.executed);
    }
}
