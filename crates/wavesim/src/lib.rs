//! Execution-wave semantics (paper §2) and the exhaustive oracle.
//!
//! An **execution wave** holds, per task, the next rendezvous point to be
//! executed (or "done"). Waves advance when two READY nodes joined by a sync
//! edge rendezvous; `NextWavesSet*` — the transitive closure of the
//! wave-successor relation from the initial waves — is the set of all
//! synchronisation states the program can reach.
//!
//! This crate implements that semantics three ways:
//!
//! * [`explore`](fn@explore) — exhaustive memoised closure over the (finite) wave
//!   space: the **precise but exponential** decision procedure. This is
//!   simultaneously the ground-truth oracle the polynomial algorithms are
//!   judged against and the Taylor-style concurrency-state-graph baseline
//!   \[Tay83a\] the paper cites (experiment E10);
//! * [`classify`](fn@classify) — the paper's anomaly taxonomy on a single wave: stall
//!   nodes, the (maximal) deadlocked set `D`, and transitive coupling
//!   (Theorem 1);
//! * [`simulate`](fn@simulate) — Monte-Carlo random executions with per-task traces,
//!   used to build the linearised programs `P_E` of §3.1.3;
//! * [`interp`](mod@interp) — a **data-aware** Monte-Carlo interpreter over the AST
//!   (condition valuations, carried booleans), the referee for the
//!   §5.1-powered condition-aware analyses that the data-blind wave
//!   semantics cannot judge.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod explore;
pub mod interp;
pub mod sim;
pub mod wave;

pub use classify::{classify, AnomalyReport};
pub use explore::{explore, explore_budgeted, ExploreConfig, Exploration, Verdict, WitnessStep};
pub use interp::{run_data_aware, Interp, InterpOutcome, InterpRun};
pub use sim::{simulate, SimOutcome, Trace};
pub use wave::{Wave, DONE};
