//! Anomaly classification (paper §2, Theorem 1).
//!
//! On an anomalous wave every node is WAITING. The paper partitions them:
//!
//! * a **stall node** `r = (t, m, s)` has *no* complementary node reachable
//!   on a control-flow path from any node on the wave — its rendezvous can
//!   never be offered again;
//! * a **deadlocked set** `D` is a set of wave nodes such that each `r ∈ D`
//!   has some `s ∈ D` with a control-flow descendant that is a sync
//!   neighbour of `r` — everyone's rescue sits behind someone else in the
//!   set (we compute the *maximal* such `D` as a greatest fixpoint);
//! * every remaining node is **transitively coupled** to a stall or
//!   deadlock (that is Theorem 1, and [`AnomalyReport::taxonomy_complete`]
//!   checks it on every classified wave).

use crate::wave::Wave;
use iwa_graphs::BitSet;
use iwa_syncgraph::SyncGraph;

/// Classification of one anomalous wave.
#[derive(Clone, Debug)]
pub struct AnomalyReport {
    /// Wave nodes with no reachable rendezvous partner at all.
    pub stall_nodes: Vec<usize>,
    /// The maximal deadlocked set `D` (wave nodes mutually waiting in a
    /// coupling cycle). Empty when the anomaly is stall-only.
    pub deadlock_set: Vec<usize>,
    /// Wave nodes that are neither stalled nor in `D` but are transitively
    /// coupled to a stalled/deadlocked node.
    pub coupled: Vec<usize>,
    /// Wave nodes in none of the three classes. **Theorem 1 says this is
    /// always empty**; kept so tests can assert it.
    pub unaccounted: Vec<usize>,
}

impl AnomalyReport {
    /// Theorem 1: every node on an anomalous wave participates in a stall
    /// or deadlock or is transitively coupled to one.
    #[must_use]
    pub fn taxonomy_complete(&self) -> bool {
        self.unaccounted.is_empty()
    }
}

/// Strictly-forward control reachability: nodes reachable from `n` through
/// **at least one** control edge (per the coupling definition's "forward
/// through at least one control flow edge").
fn strict_forward(sg: &SyncGraph, n: usize) -> BitSet {
    let mut seen = BitSet::new(sg.control.num_nodes());
    let mut stack: Vec<usize> = sg
        .control
        .successors(n)
        .iter()
        .map(|&v| v as usize)
        .collect();
    for &s in &stack {
        seen.insert(s);
    }
    while let Some(u) = stack.pop() {
        for &v in sg.control.successors(u) {
            let v = v as usize;
            if seen.insert(v) {
                stack.push(v);
            }
        }
    }
    seen
}

/// Classify an anomalous wave per the paper's taxonomy.
///
/// Also callable on non-anomalous waves (all vectors come back empty in the
/// extreme case), but its intended use is on waves `explore` found stuck.
#[must_use]
pub fn classify(sg: &SyncGraph, wave: &Wave) -> AnomalyReport {
    let active = wave.active_nodes();

    // Forward-reachable set from the whole wave (including the wave nodes
    // themselves — harmless: a wave node complementary to `r` would make
    // the wave non-anomalous).
    let mut wave_reach = BitSet::new(sg.control.num_nodes());
    for &n in &active {
        wave_reach.insert(n);
        wave_reach.union_with(&strict_forward(sg, n));
    }

    // Stall nodes: no sync neighbour anywhere in the reachable set.
    let stall_nodes: Vec<usize> = active
        .iter()
        .copied()
        .filter(|&r| {
            !sg.sync_neighbors(r)
                .iter()
                .any(|&z| wave_reach.contains(z as usize))
        })
        .collect();

    // Coupling: r is coupled to s when some strict control descendant of s
    // is a sync neighbour of r.
    let strict: Vec<(usize, BitSet)> = active
        .iter()
        .map(|&s| (s, strict_forward(sg, s)))
        .collect();
    let coupled_to = |r: usize, s_reach: &BitSet| {
        sg.sync_neighbors(r)
            .iter()
            .any(|&z| s_reach.contains(z as usize))
    };

    // Coupling digraph over the wave: edge r → s when r is coupled to s
    // (some strict control descendant of s can rendezvous with r). A
    // coupling *cycle* is a deadlock (Theorem 1's proof); nodes whose
    // coupling chains merely lead into a cycle or stall are "coupled".
    let k = active.len();
    let mut coupling: iwa_graphs::GraphBuilder<()> = iwa_graphs::GraphBuilder::with_nodes(k);
    for (ri, &r) in active.iter().enumerate() {
        for (si, (_, s_reach)) in strict.iter().enumerate() {
            if coupled_to(r, s_reach) {
                coupling.add_edge(ri, si, ());
            }
        }
    }
    let coupling = coupling.freeze();
    let scc = iwa_graphs::Scc::compute(&coupling, None);
    let deadlock_set: Vec<usize> = (0..k)
        .filter(|&i| scc.in_nontrivial_component(&coupling, i))
        .map(|i| active[i])
        .collect();

    // Transitive coupling toward stalls/deadlocks: nodes reaching an
    // accounted node in the coupling digraph.
    let mut accounted: Vec<bool> = (0..k)
        .map(|i| stall_nodes.contains(&active[i]) || deadlock_set.contains(&active[i]))
        .collect();
    loop {
        let mut grew = false;
        for i in 0..k {
            if accounted[i] {
                continue;
            }
            if coupling
                .successors(i)
                .iter()
                .any(|&j| accounted[j as usize])
            {
                accounted[i] = true;
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    let coupled: Vec<usize> = (0..k)
        .filter(|&i| {
            accounted[i]
                && !stall_nodes.contains(&active[i])
                && !deadlock_set.contains(&active[i])
        })
        .map(|i| active[i])
        .collect();
    let unaccounted: Vec<usize> = (0..k)
        .filter(|&i| !accounted[i])
        .map(|i| active[i])
        .collect();

    AnomalyReport {
        stall_nodes,
        deadlock_set,
        coupled,
        unaccounted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExploreConfig};
    use iwa_tasklang::parse;

    fn anomalies(src: &str) -> Vec<(Wave, AnomalyReport)> {
        let p = parse(src).unwrap();
        let sg = SyncGraph::from_program(&p);
        explore(&sg, &ExploreConfig::default()).unwrap().anomalies
    }

    #[test]
    fn crossed_sends_classify_as_deadlock() {
        let a = anomalies(
            "task t1 { send t2.a; accept b; } task t2 { send t1.b; accept a; }",
        );
        assert_eq!(a.len(), 1);
        let report = &a[0].1;
        assert_eq!(report.deadlock_set.len(), 2);
        assert!(report.stall_nodes.is_empty());
        assert!(report.taxonomy_complete());
    }

    #[test]
    fn lonely_accept_classifies_as_stall() {
        let a = anomalies("task t1 { accept never; } task t2 { }");
        assert_eq!(a.len(), 1);
        let report = &a[0].1;
        assert_eq!(report.stall_nodes.len(), 1);
        assert!(report.deadlock_set.is_empty());
        assert!(report.taxonomy_complete());
    }

    #[test]
    fn task_coupled_to_a_deadlock_is_reported_as_coupled() {
        // t3 can only rendezvous with t1's post-deadlock node: it is
        // coupled to the deadlock, not part of it.
        let a = anomalies(
            "task t1 { send t2.a; accept b; send t3.c; }
             task t2 { send t1.b; accept a; }
             task t3 { accept c; }",
        );
        assert_eq!(a.len(), 1);
        let report = &a[0].1;
        assert_eq!(report.deadlock_set.len(), 2);
        assert_eq!(report.coupled.len(), 1);
        assert!(report.taxonomy_complete());
    }

    #[test]
    fn self_send_is_a_self_coupled_deadlock() {
        // The task waits at its own send; its accept lies downstream in the
        // same task — coupling allows s = r, making D = {send}.
        let a = anomalies("task t { send t.m; accept m; }");
        assert_eq!(a.len(), 1);
        let report = &a[0].1;
        assert_eq!(report.deadlock_set.len(), 1);
        assert!(report.stall_nodes.is_empty());
        assert!(report.taxonomy_complete());
    }

    #[test]
    fn mixed_wave_contains_stall_and_deadlock() {
        let a = anomalies(
            "task t1 { send t2.a; accept b; }
             task t2 { send t1.b; accept a; }
             task lonely { accept silence; }",
        );
        assert_eq!(a.len(), 1);
        let report = &a[0].1;
        assert_eq!(report.deadlock_set.len(), 2);
        assert_eq!(report.stall_nodes.len(), 1);
        assert!(report.taxonomy_complete());
    }
}
