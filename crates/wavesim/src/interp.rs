//! A **data-aware** Monte-Carlo interpreter over the AST.
//!
//! The wave semantics (§2) is data-blind: every branch is independently
//! takeable, so facts that rest on the §5.1 encapsulated-boolean
//! discipline (a single-assignment boolean evaluates consistently
//! everywhere, including in another task after being carried across a
//! rendezvous) are invisible to it. This interpreter executes the program
//! *with* condition valuations:
//!
//! * an opaque (`Cond::Unknown`) branch flips a fresh coin at every
//!   evaluation;
//! * an encapsulated variable gets a random value the **first** time it is
//!   needed and keeps it for the whole run;
//! * `send … carrying x` / `accept … binding y` copies the sender's value
//!   into the receiver's `y`.
//!
//! One call runs one random execution and reports the outcome plus every
//! rendezvous node that fired — which is exactly what the fuzz validation
//! of the condition-aware analyses needs: a pair of nodes claimed
//! *not co-executable* must never both fire in any single data-aware run,
//! and a program whose stall analysis certified balance must never strand
//! a task in a completed-elsewhere run.
//!
//! Tasks spinning in rendezvous-free loops are *parked* after an
//! administrative step budget (they are live, not waiting, and outside the
//! anomaly model).

use iwa_core::TaskId;
use iwa_syncgraph::SyncGraph;
use iwa_tasklang::{Cond, Program, Stmt};
use rand::Rng;
use std::collections::HashMap;

/// Compiled per-task instruction.
#[derive(Clone, Debug)]
enum Op {
    /// A rendezvous; `node` is the sync-graph node index.
    Rv {
        node: usize,
        carrying: Option<String>,
        binding: Option<String>,
    },
    /// Branch: fall through into the then-side, or jump to `else_t`.
    Br { cond: Cond, else_t: usize },
    /// Unconditional jump.
    Jmp(usize),
    /// Task body finished.
    End,
}

/// Outcome of one data-aware run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InterpOutcome {
    /// Every task ended (or parked in a rendezvous-free loop).
    Completed,
    /// Some task rests at a rendezvous nobody can match.
    Stuck,
    /// The rendezvous step budget ran out (looping programs).
    OutOfSteps,
}

/// The record of one data-aware run.
#[derive(Clone, Debug)]
pub struct InterpRun {
    /// How it ended.
    pub outcome: InterpOutcome,
    /// Sync-graph nodes fired, in order (two entries per rendezvous).
    pub fired: Vec<usize>,
    /// Final condition valuations, `(task, var) → value`.
    pub valuation: HashMap<(TaskId, String), bool>,
    /// Tasks parked in rendezvous-free loops.
    pub parked: Vec<TaskId>,
}

impl InterpRun {
    /// Did node `n` fire during the run?
    #[must_use]
    pub fn fired_node(&self, n: usize) -> bool {
        self.fired.contains(&n)
    }
}

/// The compiled program (reusable across runs).
pub struct Interp {
    code: Vec<Vec<Op>>,
    /// Sync-edge relation over sync-graph node indices.
    edges: std::collections::HashSet<(usize, usize)>,
}

impl Interp {
    /// Compile `p` against its sync graph (for node numbering).
    ///
    /// # Panics
    /// If the program still contains procedure calls (inline first) or the
    /// sync graph does not match the program.
    #[must_use]
    pub fn compile(p: &Program, sg: &SyncGraph) -> Interp {
        assert!(!p.has_calls(), "inline procedures before interpretation");
        let mut code = Vec::with_capacity(p.num_tasks());
        for task in &p.tasks {
            // Per-task node ids in syntactic order — the same order the
            // sync graph assigned them.
            let nodes: Vec<usize> = sg
                .nodes_of_task(task.id)
                .iter()
                .map(|&n| n as usize)
                .collect();
            let mut next = 0usize;
            let mut ops = Vec::new();
            compile_block(&task.body, &nodes, &mut next, &mut ops);
            ops.push(Op::End);
            assert_eq!(next, nodes.len(), "node census matches the sync graph");
            code.push(ops);
        }
        let edges = sg
            .rendezvous_nodes()
            .flat_map(|n| {
                sg.sync_neighbors(n)
                    .iter()
                    .map(move |&m| (n, m as usize))
                    .collect::<Vec<_>>()
            })
            .collect();
        Interp { code, edges }
    }

    /// One random data-aware run (at most `max_rendezvous` firings).
    pub fn run(&self, rng: &mut impl Rng, max_rendezvous: usize) -> InterpRun {
        const ADMIN_BUDGET: usize = 10_000;
        let ntasks = self.code.len();
        let mut pc = vec![0usize; ntasks];
        let mut parked = vec![false; ntasks];
        let mut valuation: HashMap<(TaskId, String), bool> = HashMap::new();
        let mut fired = Vec::new();

        // Advance `t` through branches/jumps until it rests at Rv or End.
        let advance = |t: usize,
                       pc: &mut Vec<usize>,
                       parked: &mut Vec<bool>,
                       valuation: &mut HashMap<(TaskId, String), bool>,
                       rng: &mut dyn rand::RngCore| {
            let task = TaskId(t as u32);
            let mut steps = 0;
            loop {
                match &self.code[t][pc[t]] {
                    Op::Rv { .. } | Op::End => return,
                    Op::Jmp(target) => pc[t] = *target,
                    Op::Br { cond, else_t } => {
                        let take_then = match cond {
                            Cond::Unknown => rng.gen_bool(0.5),
                            Cond::Var(v) => *valuation
                                .entry((task, v.clone()))
                                .or_insert_with(|| rng.gen_bool(0.5)),
                        };
                        if take_then {
                            pc[t] += 1;
                        } else {
                            pc[t] = *else_t;
                        }
                    }
                }
                steps += 1;
                if steps >= ADMIN_BUDGET {
                    parked[t] = true; // rendezvous-free spin: live, not waiting
                    return;
                }
            }
        };

        for t in 0..ntasks {
            advance(t, &mut pc, &mut parked, &mut valuation, rng);
        }

        let mut count = 0usize;
        loop {
            // Collect matchable pairs among resting tasks.
            let mut pairs = Vec::new();
            for a in 0..ntasks {
                if parked[a] {
                    continue;
                }
                let Op::Rv { node: na, .. } = &self.code[a][pc[a]] else {
                    continue;
                };
                for b in (a + 1)..ntasks {
                    if parked[b] {
                        continue;
                    }
                    let Op::Rv { node: nb, .. } = &self.code[b][pc[b]] else {
                        continue;
                    };
                    // Matching uses the sync graph's edge relation, so raw
                    // graphs and typed graphs behave identically.
                    if self.edges.contains(&(*na, *nb)) {
                        pairs.push((a, b));
                    }
                }
            }
            if pairs.is_empty() {
                let any_waiting = (0..ntasks).any(|t| {
                    !parked[t] && matches!(self.code[t][pc[t]], Op::Rv { .. })
                });
                let parked_tasks = (0..ntasks)
                    .filter(|&t| parked[t])
                    .map(|t| TaskId(t as u32))
                    .collect();
                return InterpRun {
                    outcome: if any_waiting {
                        InterpOutcome::Stuck
                    } else {
                        InterpOutcome::Completed
                    },
                    fired,
                    valuation,
                    parked: parked_tasks,
                };
            }
            if count >= max_rendezvous {
                let parked_tasks = (0..ntasks)
                    .filter(|&t| parked[t])
                    .map(|t| TaskId(t as u32))
                    .collect();
                return InterpRun {
                    outcome: InterpOutcome::OutOfSteps,
                    fired,
                    valuation,
                    parked: parked_tasks,
                };
            }
            let &(a, b) = &pairs[rng.gen_range(0..pairs.len())];
            // Fire: propagate the carried boolean, record, advance both.
            let (na, ca, ba) = match &self.code[a][pc[a]] {
                Op::Rv {
                    node,
                    carrying,
                    binding,
                } => (*node, carrying.clone(), binding.clone()),
                _ => unreachable!(),
            };
            let (nb, cb, bb) = match &self.code[b][pc[b]] {
                Op::Rv {
                    node,
                    carrying,
                    binding,
                } => (*node, carrying.clone(), binding.clone()),
                _ => unreachable!(),
            };
            // Sender side is whichever carries; receiver binds.
            let transfers = [
                (a, ca, b, bb.clone()),
                (b, cb, a, ba.clone()),
            ];
            for (src, carry, dst, bind) in transfers {
                if let (Some(x), Some(y)) = (carry, bind) {
                    let v = *valuation
                        .entry((TaskId(src as u32), x))
                        .or_insert_with(|| rng.gen_bool(0.5));
                    valuation.insert((TaskId(dst as u32), y), v);
                }
            }
            fired.push(na);
            fired.push(nb);
            pc[a] += 1;
            pc[b] += 1;
            advance(a, &mut pc, &mut parked, &mut valuation, rng);
            advance(b, &mut pc, &mut parked, &mut valuation, rng);
            count += 1;
        }
    }
}

/// Convenience wrapper: compile and run one data-aware execution.
pub fn run_data_aware(
    p: &Program,
    sg: &SyncGraph,
    rng: &mut impl Rng,
    max_rendezvous: usize,
) -> InterpRun {
    Interp::compile(p, sg).run(rng, max_rendezvous)
}

fn compile_block(block: &[Stmt], nodes: &[usize], next: &mut usize, ops: &mut Vec<Op>) {
    for s in block {
        match s {
            Stmt::Send {
                carrying, ..
            } => {
                let node = nodes[*next];
                *next += 1;
                ops.push(Op::Rv {
                    node,
                    carrying: carrying.clone(),
                    binding: None,
                });
            }
            Stmt::Accept { binding, .. } => {
                let node = nodes[*next];
                *next += 1;
                ops.push(Op::Rv {
                    node,
                    carrying: None,
                    binding: binding.clone(),
                });
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let br_at = ops.len();
                ops.push(Op::Jmp(0)); // placeholder for Br
                compile_block(then_branch, nodes, next, ops);
                let jmp_at = ops.len();
                ops.push(Op::Jmp(0)); // placeholder: skip else
                let else_start = ops.len();
                compile_block(else_branch, nodes, next, ops);
                let after = ops.len();
                ops[br_at] = Op::Br {
                    cond: cond.clone(),
                    else_t: else_start,
                };
                ops[jmp_at] = Op::Jmp(after);
            }
            Stmt::While { cond, body, .. } => {
                let head = ops.len();
                ops.push(Op::Jmp(0)); // placeholder for Br
                compile_block(body, nodes, next, ops);
                ops.push(Op::Jmp(head));
                let after = ops.len();
                ops[head] = Op::Br {
                    cond: cond.clone(),
                    else_t: after,
                };
            }
            Stmt::Repeat { body, cond, .. } => {
                let head = ops.len();
                compile_block(body, nodes, next, ops);
                let br_at = ops.len();
                ops.push(Op::Jmp(0));
                ops.push(Op::Jmp(0)); // placeholder: exit
                let after = ops.len();
                // Br: continue (then) → jump back; else → after.
                ops[br_at] = Op::Br {
                    cond: cond.clone(),
                    else_t: after,
                };
                ops[br_at + 1] = Op::Jmp(head);
            }
            Stmt::Call { .. } => unreachable!("inlined before compilation"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwa_tasklang::parse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn runs(src: &str, n: usize, seed: u64) -> (SyncGraph, Vec<InterpRun>) {
        let p = parse(src).unwrap();
        let sg = SyncGraph::from_program(&p);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = (0..n)
            .map(|_| run_data_aware(&p, &sg, &mut rng, 200))
            .collect();
        (sg, out)
    }

    #[test]
    fn clean_exchange_always_completes() {
        let (_, rs) = runs(
            "task t1 { send t2.a; accept b; } task t2 { accept a; send t1.b; }",
            50,
            1,
        );
        for r in rs {
            assert_eq!(r.outcome, InterpOutcome::Completed);
            assert_eq!(r.fired.len(), 4);
        }
    }

    #[test]
    fn crossed_sends_always_stick() {
        let (_, rs) = runs(
            "task t1 { send t2.a; accept b; } task t2 { send t1.b; accept a; }",
            50,
            2,
        );
        for r in rs {
            assert_eq!(r.outcome, InterpOutcome::Stuck);
            assert!(r.fired.is_empty());
        }
    }

    #[test]
    fn encapsulated_conditions_are_consistent_per_run() {
        // fig5d: data-aware runs NEVER strand a side — either both guarded
        // rendezvous fire or neither does.
        let (sg, rs) = runs(
            "task t {
                send u.s carrying v;
                if (v) { send u.r as pos_t; }
             }
             task u {
                accept s binding w;
                if (w) { accept r as pos_u; }
             }",
            300,
            3,
        );
        let pos_t = sg.node_by_label("pos_t").unwrap();
        let pos_u = sg.node_by_label("pos_u").unwrap();
        let mut both = 0;
        let mut neither = 0;
        for r in rs {
            assert_eq!(r.outcome, InterpOutcome::Completed, "fig5d never stalls");
            match (r.fired_node(pos_t), r.fired_node(pos_u)) {
                (true, true) => both += 1,
                (false, false) => neither += 1,
                other => panic!("stranded side: {other:?}"),
            }
        }
        assert!(both > 0 && neither > 0, "both branches get explored");
    }

    #[test]
    fn contradictory_guards_never_cofire() {
        let (sg, rs) = runs(
            "task t {
                send u.s carrying v;
                if (v) { send u.x as pos; }
             }
             task u {
                accept s binding w;
                if (w) { accept x; } else { accept y as neg; }
             }
             task z { send u.y; }",
            300,
            4,
        );
        let pos = sg.node_by_label("pos").unwrap();
        let neg = sg.node_by_label("neg").unwrap();
        for r in &rs {
            assert!(
                !(r.fired_node(pos) && r.fired_node(neg)),
                "v and ¬v in one run"
            );
        }
        assert!(rs.iter().any(|r| r.fired_node(pos)));
        assert!(rs.iter().any(|r| r.fired_node(neg)));
    }

    #[test]
    fn opaque_loops_can_loop_and_exit() {
        let (_, rs) = runs(
            "task t { while { send u.m; } } task u { while { accept m; } }",
            100,
            5,
        );
        let lens: Vec<usize> = rs.iter().map(|r| r.fired.len()).collect();
        assert!(lens.iter().any(|&l| l == 0), "immediate exits happen");
        assert!(lens.iter().any(|&l| l >= 4), "multi-iteration runs happen");
    }

    #[test]
    fn rendezvous_free_spins_park_not_deadlock() {
        // A var-true loop with no rendezvous spins forever: parked, and the
        // rest of the program completes.
        let (_, rs) = runs(
            "task spinner { if (v) { while (v) { } } }
             task a { send b.m; }
             task b { accept m; }",
            60,
            6,
        );
        for r in rs {
            assert_eq!(r.outcome, InterpOutcome::Completed);
            assert_eq!(r.fired.len(), 2);
        }
    }

    #[test]
    fn var_loops_respect_the_valuation() {
        // while (v) with v=false exits immediately; v=true parks (the body
        // is rendezvous-free). Either way no anomaly.
        let (_, rs) = runs(
            "task t { while (v) { } send u.m; } task u { accept m; }",
            60,
            7,
        );
        let mut parked = 0;
        let mut done = 0;
        for r in rs {
            if r.parked.is_empty() {
                assert_eq!(r.outcome, InterpOutcome::Completed);
                assert_eq!(r.fired.len(), 2);
                done += 1;
            } else {
                // t parked pre-send: u is stuck waiting.
                assert_eq!(r.outcome, InterpOutcome::Stuck);
                parked += 1;
            }
        }
        assert!(parked > 0 && done > 0);
    }
}
