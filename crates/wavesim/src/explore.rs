//! Exhaustive exploration of `NextWavesSet*(W_INIT)`.
//!
//! The wave space is finite (one slot per task ranging over the task's
//! nodes plus "done"), so the closure is a plain memoised BFS. Its size is
//! the product of per-task node counts in the worst case — exactly the
//! exponential blow-up the paper attributes to concurrency-state methods
//! (\[Tay83a\], §6) and the reason the polynomial algorithms exist. Budgets
//! make the blow-up observable instead of fatal.

use crate::classify::{classify, AnomalyReport};
use crate::wave::{Wave, DONE};
use iwa_core::{Budget, IwaError, TaskId};
use iwa_syncgraph::{SyncGraph, B, E};
use std::collections::{HashSet, VecDeque};

/// Exploration limits.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Maximum number of distinct waves to visit.
    pub max_states: usize,
    /// Maximum number of anomalous waves to retain in full (the count keeps
    /// increasing past this).
    pub max_anomalies: usize,
    /// Record predecessor links so each retained anomaly carries a
    /// [`witness schedule`](Exploration::witnesses) — the rendezvous
    /// sequence from an initial wave to the stuck one. Costs one map entry
    /// per visited wave.
    pub track_witnesses: bool,
    /// Ignore stuck waves whose classification contains **no deadlocked
    /// set** (stall-only anomalies). Models whose tasks are all skippable
    /// by construction — the lock-order frontend's lowering, where every
    /// acquire-site branch may simply not be taken — produce stall-only
    /// waves on every acyclic schedule; in deadlock-only mode those are
    /// benign and must not count as anomalies. Costs one [`classify`] call
    /// per stuck wave. Default `false` (the paper's full taxonomy).
    pub ignore_stalls: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_states: 1 << 20,
            max_anomalies: 64,
            track_witnesses: true,
            ignore_stalls: false,
        }
    }
}

/// One rendezvous in a witness schedule: the two sync-graph nodes that
/// fired together.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WitnessStep {
    /// One side of the rendezvous (sync-graph node index).
    pub a: usize,
    /// The other side.
    pub b: usize,
}

impl WitnessStep {
    /// Human-readable rendering against the graph's symbols.
    #[must_use]
    pub fn render(&self, sg: &SyncGraph) -> String {
        let name = |n: usize| {
            let d = sg.node(n);
            let label = d
                .label
                .clone()
                .unwrap_or_else(|| {
                    format!("{}{}", sg.symbols.signal_name(d.rendezvous.signal), d.rendezvous.sign)
                });
            format!("{}:{}", sg.symbols.task_name(d.task), label)
        };
        format!("{} ⇄ {}", name(self.a), name(self.b))
    }
}

/// What the exhaustive oracle decided.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Every reachable wave can advance or is fully terminated, i.e. the
    /// program has **no infinite wait anomaly**.
    AnomalyFree,
    /// At least one reachable wave is anomalous.
    Anomalous,
}

/// Result of an exhaustive exploration.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// The overall verdict.
    pub verdict: Verdict,
    /// Number of distinct waves visited.
    pub states: usize,
    /// Number of wave transitions (rendezvous firings, counting branch
    /// choices separately).
    pub transitions: usize,
    /// Whether some execution terminates with every task done.
    pub can_terminate: bool,
    /// Retained anomalous waves with their classification (up to
    /// `max_anomalies`).
    pub anomalies: Vec<(Wave, AnomalyReport)>,
    /// For each retained anomaly (when witness tracking is on): the
    /// rendezvous schedule leading from an initial wave to it. Replaying
    /// the steps through [`next_waves`] reproduces the stuck wave.
    pub witnesses: Vec<Vec<WitnessStep>>,
    /// Total number of anomalous waves encountered.
    pub anomaly_count: usize,
}

impl Exploration {
    /// Did any anomalous wave contain a (cyclic) deadlocked set?
    #[must_use]
    pub fn has_deadlock(&self) -> bool {
        self.anomalies.iter().any(|(_, r)| !r.deadlock_set.is_empty())
    }

    /// Did any anomalous wave contain a stall node?
    #[must_use]
    pub fn has_stall(&self) -> bool {
        self.anomalies.iter().any(|(_, r)| !r.stall_nodes.is_empty())
    }
}

/// The initial waves: every combination of per-task first rendezvous points
/// (the nondeterministic choice models conditional branches out of `b`),
/// with [`DONE`] as an extra option for tasks that may finish without
/// synchronising.
pub fn initial_waves(sg: &SyncGraph) -> Result<Vec<Wave>, IwaError> {
    let mut options: Vec<Vec<u32>> = Vec::with_capacity(sg.num_tasks);
    for t in 0..sg.num_tasks {
        let task = TaskId(t as u32);
        let mut opts: Vec<u32> = sg
            .control
            .successors(B)
            .iter()
            .map(|&v| v as usize)
            .filter(|&v| v != E && sg.is_rendezvous(v) && sg.node(v).task == task)
            .map(|v| v as u32)
            .collect();
        if sg.task_skippable(task) || sg.nodes_of_task(task).is_empty() {
            opts.push(DONE);
        }
        if opts.is_empty() {
            return Err(IwaError::InvalidProgram(format!(
                "task {} has rendezvous nodes but none reachable from b",
                sg.symbols.task_name(task)
            )));
        }
        options.push(opts);
    }
    // Cartesian product.
    let mut waves = vec![Vec::new()];
    for opts in &options {
        let mut next = Vec::with_capacity(waves.len() * opts.len());
        for w in &waves {
            for &o in opts {
                let mut w2 = w.clone();
                w2.push(o);
                next.push(w2);
            }
        }
        waves = next;
    }
    Ok(waves.into_iter().map(Wave).collect())
}

/// Successor slots of a rendezvous node: its control successors, with `e`
/// mapped to [`DONE`].
fn successor_slots(sg: &SyncGraph, node: usize) -> Vec<u32> {
    sg.control
        .successors(node)
        .iter()
        .map(|&v| {
            let v = v as usize;
            if v == E {
                DONE
            } else {
                debug_assert!(
                    sg.is_rendezvous(v) && sg.node(v).task == sg.node(node).task,
                    "control successors stay within the task"
                );
                v as u32
            }
        })
        .collect()
}

/// `NextWaves(W)`: all waves derivable by one rendezvous.
#[must_use]
pub fn next_waves(sg: &SyncGraph, w: &Wave) -> Vec<Wave> {
    next_waves_with_steps(sg, w).into_iter().map(|(w, _)| w).collect()
}

/// [`next_waves`] annotated with the rendezvous that produced each wave.
#[must_use]
pub fn next_waves_with_steps(sg: &SyncGraph, w: &Wave) -> Vec<(Wave, WitnessStep)> {
    let mut out = Vec::new();
    for (i, j) in w.ready_pairs(sg) {
        let node_i = w.0[i] as usize;
        let node_j = w.0[j] as usize;
        let step = WitnessStep {
            a: node_i,
            b: node_j,
        };
        for &si in &successor_slots(sg, node_i) {
            for &sj in &successor_slots(sg, node_j) {
                let mut w2 = w.clone();
                w2.0[i] = si;
                w2.0[j] = sj;
                out.push((w2, step));
            }
        }
    }
    out
}

/// Exhaustively explore the reachable wave space.
///
/// Errors with [`IwaError::BudgetExceeded`] when `max_states` is hit, so a
/// truncated exploration can never masquerade as a certification.
/// ```
/// use iwa_wavesim::{explore, ExploreConfig};
///
/// let p = iwa_tasklang::parse(
///     "task t1 { send t2.a; accept b; } task t2 { send t1.b; accept a; }",
/// ).unwrap();
/// let sg = iwa_syncgraph::SyncGraph::from_program(&p);
/// let e = explore(&sg, &ExploreConfig::default()).unwrap();
/// assert!(e.has_deadlock());
/// assert!(!e.can_terminate);
/// ```
pub fn explore(sg: &SyncGraph, config: &ExploreConfig) -> Result<Exploration, IwaError> {
    explore_budgeted(sg, config, &Budget::unlimited())
}

/// [`explore`] under a cooperative [`Budget`].
///
/// Checkpoints once per transition examined, so a wall-clock deadline,
/// step ceiling, or cancellation stops the BFS mid-flight with
/// [`IwaError::BudgetExceeded`] carrying partial-progress counters
/// (`items` = distinct waves visited so far).
pub fn explore_budgeted(
    sg: &SyncGraph,
    config: &ExploreConfig,
    budget: &Budget,
) -> Result<Exploration, IwaError> {
    let started = std::time::Instant::now();
    let mut visited: HashSet<Wave> = HashSet::new();
    let mut queue: VecDeque<Wave> = VecDeque::new();
    // Predecessor links for witness reconstruction: wave → (parent, step).
    let mut parents: std::collections::HashMap<Wave, (Wave, WitnessStep)> =
        std::collections::HashMap::new();
    let mut initial: HashSet<Wave> = HashSet::new();
    for w in initial_waves(sg)? {
        if visited.insert(w.clone()) {
            if config.track_witnesses {
                initial.insert(w.clone());
            }
            queue.push_back(w);
        }
    }
    let mut transitions = 0usize;
    let mut can_terminate = false;
    let mut anomalies = Vec::new();
    let mut witnesses = Vec::new();
    let mut anomaly_count = 0usize;

    while let Some(w) = queue.pop_front() {
        budget.probe("exploring execution waves")?;
        if visited.len() > config.max_states {
            return Err(IwaError::BudgetExceeded {
                what: "exploring execution waves".into(),
                limit: config.max_states,
                steps: transitions as u64,
                items: visited.len(),
                elapsed_ms: started.elapsed().as_millis().try_into().unwrap_or(u64::MAX),
                degraded: false,
            });
        }
        if w.all_done() {
            can_terminate = true;
            continue;
        }
        let succs = next_waves_with_steps(sg, &w);
        if succs.is_empty() {
            // No rendezvous can fire and not all tasks are done.
            if config.ignore_stalls && classify(sg, &w).deadlock_set.is_empty() {
                // Deadlock-only mode: a stall-only stuck wave is benign.
                continue;
            }
            anomaly_count += 1;
            if anomalies.len() < config.max_anomalies {
                let report = classify(sg, &w);
                if config.track_witnesses {
                    // Walk the parent chain back to an initial wave.
                    let mut steps = Vec::new();
                    let mut cur = w.clone();
                    while !initial.contains(&cur) {
                        let (prev, step) = parents
                            .get(&cur)
                            .expect("every visited non-initial wave has a parent")
                            .clone();
                        steps.push(step);
                        cur = prev;
                    }
                    steps.reverse();
                    witnesses.push(steps);
                }
                anomalies.push((w, report));
            }
            continue;
        }
        for (s, step) in succs {
            budget.checkpoint("exploring execution waves")?;
            transitions += 1;
            if visited.insert(s.clone()) {
                budget.record_items(1);
                if config.track_witnesses {
                    parents.insert(s.clone(), (w.clone(), step));
                }
                queue.push_back(s);
            }
        }
    }

    Ok(Exploration {
        verdict: if anomaly_count == 0 {
            Verdict::AnomalyFree
        } else {
            Verdict::Anomalous
        },
        states: visited.len(),
        transitions,
        can_terminate,
        anomalies,
        witnesses,
        anomaly_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwa_tasklang::parse;

    fn explore_src(src: &str) -> Exploration {
        let p = parse(src).unwrap();
        let sg = SyncGraph::from_program(&p);
        explore(&sg, &ExploreConfig::default()).unwrap()
    }

    #[test]
    fn compatible_exchange_is_anomaly_free() {
        let e = explore_src(
            "task t1 { send t2.a; accept b; } task t2 { accept a; send t1.b; }",
        );
        assert_eq!(e.verdict, Verdict::AnomalyFree);
        assert!(e.can_terminate);
        assert_eq!(e.anomaly_count, 0);
    }

    #[test]
    fn crossed_sends_deadlock() {
        let e = explore_src(
            "task t1 { send t2.a; accept b; } task t2 { send t1.b; accept a; }",
        );
        assert_eq!(e.verdict, Verdict::Anomalous);
        assert!(e.has_deadlock());
        assert!(!e.can_terminate);
    }

    #[test]
    fn missing_partner_stalls() {
        // Paper Fig 2(a) flavour: an accept no one ever signals.
        let e = explore_src("task t1 { accept never; } task t2 { }");
        assert_eq!(e.verdict, Verdict::Anomalous);
        assert!(e.has_stall());
        assert!(!e.has_deadlock());
    }

    #[test]
    fn branch_choices_multiply_initial_waves() {
        let p = parse(
            "task t1 { if { send t2.a; } else { send t2.b; } }
             task t2 { if { accept a; } else { accept b; } }",
        )
        .unwrap();
        let sg = SyncGraph::from_program(&p);
        let init = initial_waves(&sg).unwrap();
        assert_eq!(init.len(), 4);
        // Two of the four initial waves are mismatched (a vs accept b …):
        // the program *can* stall.
        let e = explore(&sg, &ExploreConfig::default()).unwrap();
        assert_eq!(e.verdict, Verdict::Anomalous);
        assert!(e.can_terminate, "the matched branches do complete");
        assert!(e.has_stall());
    }

    #[test]
    fn loops_terminate_exploration() {
        // Unbounded loop on both sides: wave space is finite even though
        // executions are not.
        let e = explore_src(
            "task t1 { while { send t2.a; } } task t2 { while { accept a; } }",
        );
        // One side may exit its loop while the other keeps waiting: stall
        // is possible, but the state space stays tiny.
        assert!(e.states <= 16);
        assert!(e.can_terminate);
    }

    #[test]
    fn witnesses_replay_to_their_anomalies() {
        // Philosophers-style: a deadlock a few steps in; the witness must
        // replay through next_waves to the recorded stuck wave.
        let p = parse(
            "task f1 { accept take; accept put; }
             task f2 { accept take; accept put; }
             task p1 { send f1.take; send f2.take; send f1.put; send f2.put; }
             task p2 { send f2.take; send f1.take; send f2.put; send f1.put; }",
        )
        .unwrap();
        let sg = SyncGraph::from_program(&p);
        let e = explore(&sg, &ExploreConfig::default()).unwrap();
        assert!(!e.anomalies.is_empty());
        assert_eq!(e.anomalies.len(), e.witnesses.len());
        for ((stuck, _), steps) in e.anomalies.iter().zip(&e.witnesses) {
            // Replay: starting from some initial wave, each step must be
            // realisable and the final wave must equal the stuck one.
            let mut frontier: Vec<Wave> = initial_waves(&sg).unwrap();
            for step in steps {
                let mut next = Vec::new();
                for w in &frontier {
                    for (s, st) in next_waves_with_steps(&sg, w) {
                        if st == *step {
                            next.push(s);
                        }
                    }
                }
                assert!(!next.is_empty(), "witness step not realisable");
                frontier = next;
            }
            assert!(
                frontier.contains(stuck),
                "witness does not reach the stuck wave"
            );
            // Rendering names tasks.
            if let Some(first) = steps.first() {
                assert!(first.render(&sg).contains('⇄'));
            }
        }
    }

    #[test]
    fn witness_tracking_can_be_disabled() {
        let p = parse("task t1 { accept never; } task t2 { }").unwrap();
        let sg = SyncGraph::from_program(&p);
        let e = explore(
            &sg,
            &ExploreConfig {
                track_witnesses: false,
                ..ExploreConfig::default()
            },
        )
        .unwrap();
        assert!(e.witnesses.is_empty());
        assert_eq!(e.anomaly_count, 1);
    }

    #[test]
    fn immediate_deadlocks_have_empty_witnesses() {
        let p = parse(
            "task t1 { send t2.a; accept b; } task t2 { send t1.b; accept a; }",
        )
        .unwrap();
        let sg = SyncGraph::from_program(&p);
        let e = explore(&sg, &ExploreConfig::default()).unwrap();
        assert_eq!(e.witnesses.len(), 1);
        assert!(e.witnesses[0].is_empty(), "stuck from the very first wave");
    }

    #[test]
    fn budget_is_honoured() {
        let p = parse(
            "task t1 { send t2.a; send t2.a; send t2.a; }
             task t2 { accept a; accept a; accept a; }",
        )
        .unwrap();
        let sg = SyncGraph::from_program(&p);
        let e = explore(
            &sg,
            &ExploreConfig {
                max_states: 2,
                max_anomalies: 4,
                track_witnesses: false,
                ..ExploreConfig::default()
            },
        );
        assert!(matches!(e, Err(IwaError::BudgetExceeded { .. })));
    }

    #[test]
    fn ignore_stalls_keeps_deadlocks_but_drops_stall_only_waves() {
        let deadlock_only = ExploreConfig {
            ignore_stalls: true,
            ..ExploreConfig::default()
        };
        // Stall-only program: invisible in deadlock-only mode.
        let p = parse("task t1 { accept never; } task t2 { }").unwrap();
        let sg = SyncGraph::from_program(&p);
        let e = explore(&sg, &deadlock_only).unwrap();
        assert_eq!(e.verdict, Verdict::AnomalyFree);
        assert_eq!(e.anomaly_count, 0);
        assert!(e.anomalies.is_empty());
        // A genuine coupling cycle still surfaces, with its witness.
        let p = parse(
            "task t1 { send t2.a; accept b; } task t2 { send t1.b; accept a; }",
        )
        .unwrap();
        let sg = SyncGraph::from_program(&p);
        let e = explore(&sg, &deadlock_only).unwrap();
        assert_eq!(e.verdict, Verdict::Anomalous);
        assert!(e.has_deadlock());
        assert_eq!(e.anomalies.len(), e.witnesses.len());
    }

    #[test]
    fn self_send_is_detected_as_anomalous() {
        let e = explore_src("task t { send t.m; accept m; }");
        assert_eq!(e.verdict, Verdict::Anomalous);
    }

    #[test]
    fn three_task_cycle_deadlocks() {
        // Classic circular wait across three tasks.
        let e = explore_src(
            "task a { send b.x; accept z; }
             task b { send c.y; accept x; }
             task c { send a.z; accept y; }",
        );
        assert!(e.has_deadlock());
        assert!(!e.can_terminate);
    }
}
