//! Execution waves.

use iwa_core::TaskId;
use iwa_syncgraph::SyncGraph;

/// Sentinel slot value: the task has reached its end node `e`.
pub const DONE: u32 = u32::MAX;

/// An execution wave: one slot per task, holding the sync-graph node the
/// task is poised to execute, or [`DONE`].
///
/// The paper's `W[u]` may also be `b`, but since every task is activated at
/// program start, the initial waves here already hold each task's first
/// rendezvous point (or [`DONE`] for tasks with a rendezvous-free path) —
/// `b` never appears.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Wave(pub Vec<u32>);

impl Wave {
    /// The slot of `task`.
    #[must_use]
    pub fn slot(&self, task: TaskId) -> u32 {
        self.0[task.index()]
    }

    /// Is `task` finished on this wave?
    #[must_use]
    pub fn is_done(&self, task: TaskId) -> bool {
        self.slot(task) == DONE
    }

    /// Are all tasks finished (successful termination)?
    #[must_use]
    pub fn all_done(&self) -> bool {
        self.0.iter().all(|&s| s == DONE)
    }

    /// The rendezvous nodes currently on the wave (unfinished tasks only).
    #[must_use]
    pub fn active_nodes(&self) -> Vec<usize> {
        self.0
            .iter()
            .filter(|&&s| s != DONE)
            .map(|&s| s as usize)
            .collect()
    }

    /// All READY pairs: `(task_i, task_j)` with `i < j` whose slots are
    /// joined by a sync edge.
    #[must_use]
    pub fn ready_pairs(&self, sg: &SyncGraph) -> Vec<(usize, usize)> {
        let n = self.0.len();
        let mut pairs = Vec::new();
        for i in 0..n {
            if self.0[i] == DONE {
                continue;
            }
            for j in (i + 1)..n {
                if self.0[j] == DONE {
                    continue;
                }
                if sg.has_sync_edge(self.0[i] as usize, self.0[j] as usize) {
                    pairs.push((i, j));
                }
            }
        }
        pairs
    }

    /// Is this wave **anomalous** (paper §2): at least one task still at a
    /// rendezvous point, and no two wave nodes can rendezvous?
    #[must_use]
    pub fn is_anomalous(&self, sg: &SyncGraph) -> bool {
        self.0.iter().any(|&s| s != DONE) && self.ready_pairs(sg).is_empty()
    }

    /// Human-readable rendering (for diagnostics).
    #[must_use]
    pub fn render(&self, sg: &SyncGraph) -> String {
        let mut parts = Vec::new();
        for (i, &s) in self.0.iter().enumerate() {
            let task = sg.symbols.task_name(TaskId(i as u32));
            if s == DONE {
                parts.push(format!("{task}: e"));
            } else {
                let d = sg.node(s as usize);
                let at = d
                    .label
                    .clone()
                    .unwrap_or_else(|| format!("{}{}", sg.symbols.signal_name(d.rendezvous.signal), d.rendezvous.sign));
                parts.push(format!("{task}: {at}"));
            }
        }
        format!("[{}]", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwa_syncgraph::SyncGraph;
    use iwa_tasklang::parse;

    fn crossed() -> SyncGraph {
        let p = parse(
            "task t1 { send t2.a as sa; accept b as rb; }
             task t2 { send t1.b as sb; accept a as ra; }",
        )
        .unwrap();
        SyncGraph::from_program(&p)
    }

    #[test]
    fn ready_pairs_follow_sync_edges() {
        let sg = crossed();
        let sa = sg.node_by_label("sa").unwrap() as u32;
        let ra = sg.node_by_label("ra").unwrap() as u32;
        let sb = sg.node_by_label("sb").unwrap() as u32;
        // Both tasks at their sends: the crossed deadlock wave.
        let w = Wave(vec![sa, sb]);
        assert!(w.ready_pairs(&sg).is_empty());
        assert!(w.is_anomalous(&sg));
        // t1 at its send, t2 at the matching accept: ready.
        let w2 = Wave(vec![sa, ra]);
        assert_eq!(w2.ready_pairs(&sg), vec![(0, 1)]);
        assert!(!w2.is_anomalous(&sg));
    }

    #[test]
    fn done_tasks_do_not_participate() {
        let sg = crossed();
        let sa = sg.node_by_label("sa").unwrap() as u32;
        let w = Wave(vec![sa, DONE]);
        assert!(w.ready_pairs(&sg).is_empty());
        assert!(w.is_anomalous(&sg), "t1 is stuck forever");
        assert!(!w.all_done());
        assert!(Wave(vec![DONE, DONE]).all_done());
        assert!(!Wave(vec![DONE, DONE]).is_anomalous(&sg));
    }

    #[test]
    fn rendering_names_tasks_and_labels() {
        let sg = crossed();
        let sa = sg.node_by_label("sa").unwrap() as u32;
        let w = Wave(vec![sa, DONE]);
        let s = w.render(&sg);
        assert!(s.contains("t1: sa"));
        assert!(s.contains("t2: e"));
    }
}
