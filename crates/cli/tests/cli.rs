//! End-to-end tests of the `iwa` binary.

use std::process::Command;

fn iwa(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_iwa"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn help_prints_usage() {
    let (out, _, code) = iwa(&["help"]);
    assert_eq!(code, Some(0));
    assert!(out.contains("USAGE"));
}

#[test]
fn fixtures_are_listed() {
    let (out, _, code) = iwa(&["fixtures"]);
    assert_eq!(code, Some(0));
    assert!(out.contains("fixture:fig1"));
    assert!(out.contains("fixture:fig2b"));
}

#[test]
fn analyzing_a_clean_fixture_exits_zero() {
    // lemma2 is deadlock-flagged at base tier, but the pair tier plus the
    // balanced counts make it fully clean.
    let (out, _, code) = iwa(&["analyze", "fixture:lemma2", "--tier", "pairs"]);
    assert_eq!(code, Some(0), "{out}");
    assert!(out.contains("deadlock-free"));
    assert!(out.contains("stall-free"));
}

#[test]
fn analyzing_a_deadlock_exits_nonzero_and_names_heads() {
    let (out, _, code) = iwa(&["analyze", "fixture:fig2b", "--oracle"]);
    assert_eq!(code, Some(1));
    assert!(out.contains("potential deadlock"));
    assert!(out.contains("flagged head"));
    assert!(out.contains("oracle"));
    assert!(out.contains("deadlock"));
}

#[test]
fn json_output_is_valid_json() {
    let (out, _, code) = iwa(&["analyze", "fixture:fig2b", "--json"]);
    assert_eq!(code, Some(1));
    let v: serde_json::Value = serde_json::from_str(&out).expect("valid json");
    assert_eq!(v["refined_deadlock_free"], serde_json::Value::Bool(false));
    assert_eq!(v["tasks"], 2);
}

#[test]
fn graph_outputs_dot() {
    let (out, _, code) = iwa(&["graph", "fixture:fig1"]);
    assert_eq!(code, Some(0));
    assert!(out.starts_with("digraph sync_graph"));
    let (out, _, _) = iwa(&["graph", "fixture:fig1", "--clg"]);
    assert!(out.starts_with("digraph clg"));
}

#[test]
fn file_input_works() {
    let dir = std::env::temp_dir().join("iwa_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("prog.iwa");
    std::fs::write(&path, "task a { send b.m; } task b { accept m; }").unwrap();
    let (out, err, code) = iwa(&["analyze", path.to_str().unwrap()]);
    assert_eq!(code, Some(0), "stdout: {out}\nstderr: {err}");
    assert!(out.contains("deadlock-free"));
}

#[test]
fn unknown_fixture_is_a_clean_error() {
    let (_, err, code) = iwa(&["analyze", "fixture:nope"]);
    assert_eq!(code, Some(2));
    assert!(err.contains("unknown fixture"));
}

#[test]
fn parse_errors_are_reported_with_position() {
    let dir = std::env::temp_dir().join("iwa_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.iwa");
    std::fs::write(&path, "task a { explode; }").unwrap();
    let (_, err, code) = iwa(&["analyze", path.to_str().unwrap()]);
    assert_eq!(code, Some(2));
    assert!(err.contains("parse error"));
}

/// A scratch directory unique to this process (the CLI tests all spawn
/// the same binary, so uniqueness per test name is enough).
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("iwa-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const CLEAN: &str = "task t1 { send t2.a; accept b; } task t2 { accept a; send t1.b; }";
const DEADLOCK: &str = "task t1 { send t2.a; accept b; } task t2 { send t1.b; accept a; }";

#[test]
fn a_one_ms_deadline_yields_a_labelled_degraded_verdict() {
    let dir = scratch("deadline");
    let path = dir.join("adversarial.iwa");
    std::fs::write(
        &path,
        iwa_workloads::adversarial::deep_loop_nest(4, 2).to_source(),
    )
    .unwrap();
    let (out, err, code) = iwa(&["analyze", path.to_str().unwrap(), "--deadline-ms", "1"]);
    // The nest is stall-prone, so even the degraded floor verdict flags it.
    assert_eq!(code, Some(1), "stdout: {out}\nstderr: {err}");
    assert!(out.contains("degraded"), "degradation must be labelled: {out}");
    assert!(out.contains("naive"), "the floor produced the verdict: {out}");
    assert!(out.contains("budget-exceeded"), "audit trail present: {out}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_fixture_survives_a_one_ms_deadline() {
    // The acceptance bar: `--deadline-ms 1` terminates promptly on *any*
    // fixture — possibly degraded, never hung, never panicking.
    for (name, _) in iwa_workloads::figures::all_figures() {
        let spec = format!("fixture:{name}");
        let (out, err, code) = iwa(&["analyze", &spec, "--deadline-ms", "1"]);
        assert!(
            matches!(code, Some(0 | 1 | 3)),
            "{spec}: code {code:?}\nstdout: {out}\nstderr: {err}"
        );
        assert!(out.contains("verdict"), "{spec}: {out}");
    }
}

#[test]
fn degraded_clean_exits_3_not_0() {
    let dir = scratch("deg3");
    let path = dir.join("branchy.iwa");
    std::fs::write(
        &path,
        "task t1 { if { send t2.a; } else { send t2.a; } accept b; }
         task t2 { accept a; send t1.b; }",
    )
    .unwrap();
    let (out, _, code) = iwa(&["analyze", path.to_str().unwrap(), "--max-steps", "1"]);
    assert_eq!(code, Some(3), "degraded must not masquerade as clean: {out}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn ladder_mode_emits_json_with_attempts() {
    let (out, _, code) = iwa(&["analyze", "fixture:lemma2", "--json", "--max-steps", "1000000", "--start", "pairs"]);
    assert_eq!(code, Some(0), "{out}");
    let v: serde_json::Value = serde_json::from_str(&out).expect("valid json");
    assert_eq!(v["verdict"], serde_json::Value::String("Clean".into()));
    assert_eq!(v["rung"], serde_json::Value::String("HeadPairs".into()));
    assert_eq!(v["degraded"], serde_json::Value::Bool(false));
}

#[test]
fn bad_budget_flags_are_usage_errors() {
    for args in [
        &["analyze", "fixture:fig1", "--deadline-ms", "soon"][..],
        &["analyze", "fixture:fig1", "--start", "hopeful"][..],
        &["analyze", "fixture:fig1", "--max-steps"][..],
        &["check"][..],
    ] {
        let (_, err, code) = iwa(args);
        assert_eq!(code, Some(2), "{args:?} must be a usage error: {err}");
    }
}

#[test]
fn check_exit_codes_follow_the_contract() {
    // Exit 1: a deadlock in the corpus.
    let dir = scratch("check1");
    std::fs::write(dir.join("good.iwa"), CLEAN).unwrap();
    std::fs::write(dir.join("bad.iwa"), DEADLOCK).unwrap();
    let (out, _, code) = iwa(&["check", dir.to_str().unwrap()]);
    assert_eq!(code, Some(1), "{out}");
    assert!(out.contains("1 anomalous"), "{out}");
    std::fs::remove_dir_all(&dir).unwrap();

    // Exit 0: all clean.
    let dir = scratch("check0");
    std::fs::write(dir.join("good.iwa"), CLEAN).unwrap();
    let (out, _, code) = iwa(&["check", dir.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{out}");
    std::fs::remove_dir_all(&dir).unwrap();

    // Exit 3: no anomaly, but one file does not even parse.
    let dir = scratch("check3");
    std::fs::write(dir.join("good.iwa"), CLEAN).unwrap();
    std::fs::write(dir.join("noise.iwa"), "]]] not a program [[[").unwrap();
    let (out, _, code) = iwa(&["check", dir.to_str().unwrap()]);
    assert_eq!(code, Some(3), "{out}");
    assert!(out.contains("parse-error"), "{out}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn check_emits_json_and_survives_an_injected_panic() {
    let dir = scratch("checkpanic");
    std::fs::write(dir.join("aaa.iwa"), CLEAN).unwrap();
    std::fs::write(dir.join("detonator-e2e.iwa"), CLEAN).unwrap();
    std::fs::write(dir.join("zzz.iwa"), CLEAN).unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_iwa"))
        .args(["check", dir.to_str().unwrap(), "--json"])
        .env("IWA_FAULT_INJECT", "detonator-e2e")
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(3), "{stdout}");
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid json: {stdout}");
    assert_eq!(v["total"], 3);
    assert_eq!(v["panicked"], 1);
    assert_eq!(v["clean"], 2, "the panic was isolated; the rest ran");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn check_runs_the_repo_corpus_with_json_output() {
    let corpus = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus");
    let (out, err, code) = iwa(&["check", corpus.to_str().unwrap(), "--json"]);
    let v: serde_json::Value = serde_json::from_str(&out)
        .unwrap_or_else(|e| panic!("valid json ({e})\nstdout: {out}\nstderr: {err}"));
    // The corpus deliberately contains deadlocks.
    assert_eq!(code, Some(1));
    assert!(v["total"].as_u64().unwrap() >= 8);
    assert_eq!(v["panicked"], 0);
    assert_eq!(v["errors"], 0);
}

#[test]
fn check_output_is_byte_identical_for_any_job_count() {
    let corpus = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus");
    let corpus = corpus.to_str().unwrap();
    // A step budget (not a wall-clock one) keeps trip-vs-complete
    // deterministic regardless of scheduling. Timings and steal counts are
    // the only legitimate run-to-run variation; `masked` zeroes them.
    let run = |jobs: &str| {
        let (out, err, code) =
            iwa(&["check", corpus, "--json", "--max-steps", "200000", "-j", jobs]);
        assert_eq!(code, Some(1), "stdout: {out}\nstderr: {err}");
        iwa_testsupport::masked(&out)
    };
    let sequential = run("1");
    assert_eq!(sequential, run("2"), "-j 2 must match -j 1");
    assert_eq!(sequential, run("8"), "-j 8 must match -j 1");
}

#[test]
fn analyze_output_is_identical_for_any_job_count() {
    let run = |jobs: &str| {
        let (out, _, code) = iwa(&["analyze", "fixture:fig2b", "--json", "--jobs", jobs]);
        assert_eq!(code, Some(1), "{out}");
        iwa_testsupport::masked(&out)
    };
    let sequential = run("1");
    assert_eq!(sequential, run("4"), "--jobs 4 must match --jobs 1");
    assert_eq!(sequential, run("0"), "--jobs 0 (all cores) must match");
}

#[test]
fn json_reports_carry_the_schema_version() {
    let (out, _, _) = iwa(&["analyze", "fixture:fig1", "--json"]);
    let v: serde_json::Value = serde_json::from_str(&out).expect("valid json");
    assert_eq!(v["schema_version"], iwa_engine::SCHEMA_VERSION as u64);

    let (out, _, _) = iwa(&["analyze", "fixture:fig1", "--json", "--max-steps", "100000"]);
    let v: serde_json::Value = serde_json::from_str(&out).expect("valid json");
    assert_eq!(v["schema_version"], iwa_engine::SCHEMA_VERSION as u64);

    let corpus = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus");
    let (out, _, _) = iwa(&["check", corpus.to_str().unwrap(), "--json"]);
    let v: serde_json::Value = serde_json::from_str(&out).expect("valid json");
    assert_eq!(v["schema_version"], iwa_engine::SCHEMA_VERSION as u64);
}

#[test]
fn jobs_flags_are_parsed_identically_by_analyze_and_check() {
    for sub in ["analyze", "check"] {
        let (_, err, code) = iwa(&[sub, "fixture:fig1", "-j", "lots"]);
        assert_eq!(code, Some(2), "{sub}: {err}");
        assert!(err.contains("bad -j 'lots'"), "{sub}: {err}");
        let (_, err, code) = iwa(&[sub, "fixture:fig1", "--jobs"]);
        assert_eq!(code, Some(2), "{sub}: {err}");
        assert!(err.contains("-j needs a value"), "{sub}: {err}");
    }
}

#[test]
fn inline_and_unroll_print_transformed_programs() {
    let dir = std::env::temp_dir().join("iwa_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("procs.iwa");
    std::fs::write(
        &path,
        "proc hello { send b.m; } task a { while { call hello; } } task b { while { accept m; } }",
    )
    .unwrap();
    let (out, _, code) = iwa(&["inline", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(out.contains("send b.m;"));
    assert!(!out.contains("call"));
    assert!(out.contains("while"), "inline keeps loops");
    let (out, _, code) = iwa(&["unroll", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(!out.contains("while"), "unroll removes loops");
    assert_eq!(out.matches("send b.m;").count(), 2, "two copies");
}

// ---------------------------------------------------------------- lint

/// The workspace root: lint goldens pin paths relative to it, so the
/// binary must run from there (exactly as CI does).
fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

fn iwa_at_root(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_iwa"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

fn golden(name: &str) -> String {
    std::fs::read_to_string(repo_root().join("tests/golden").join(name)).unwrap()
}

#[test]
fn lint_text_output_matches_the_golden_file() {
    let (out, err, code) = iwa_at_root(&["lint", "corpus", "--format", "text"]);
    assert_eq!(code, Some(1), "deadlock-head denials flag the corpus: {err}");
    assert_eq!(out, golden("corpus_lints.txt"), "regenerate with: iwa lint corpus --format text > tests/golden/corpus_lints.txt");
}

#[test]
fn lint_sarif_output_matches_the_golden_file() {
    let (out, _, code) = iwa_at_root(&["lint", "corpus", "--format", "sarif"]);
    assert_eq!(code, Some(1));
    assert_eq!(out, golden("corpus_lints.sarif"), "regenerate with: iwa lint corpus --format sarif > tests/golden/corpus_lints.sarif");
}

#[test]
fn lint_output_is_identical_across_job_counts() {
    let (base, _, _) = iwa_at_root(&["lint", "corpus", "-j", "1"]);
    for jobs in ["2", "8"] {
        let (out, _, _) = iwa_at_root(&["lint", "corpus", "-j", jobs]);
        assert_eq!(out, base, "-j {jobs} diverged from -j 1");
    }
}

#[test]
fn lint_deny_warnings_flips_the_exit_code() {
    let fixture = "corpus/lints/silent_task.iwa";
    let (out, _, code) = iwa_at_root(&["lint", fixture]);
    assert_eq!(code, Some(0), "warnings alone exit 0: {out}");
    assert!(out.contains("warning[silent-task]"));
    let (out, _, code) = iwa_at_root(&["lint", fixture, "--deny-warnings"]);
    assert_eq!(code, Some(1), "--deny-warnings promotes to a failure");
    assert!(out.contains("error[silent-task]"));
}

#[test]
fn lint_severity_flags_are_validated_and_applied() {
    let fixture = "corpus/lints/silent_task.iwa";
    let (out, _, code) = iwa_at_root(&["lint", fixture, "-A", "silent-task"]);
    assert_eq!(code, Some(0));
    assert!(out.contains("0 error(s), 0 warning(s)"), "{out}");
    let (_, _, code) = iwa_at_root(&["lint", fixture, "-D", "silent-task"]);
    assert_eq!(code, Some(1));
    let (_, err, code) = iwa_at_root(&["lint", fixture, "-W", "no-such-lint"]);
    assert_eq!(code, Some(2));
    assert!(err.contains("unknown lint"), "{err}");
}

#[test]
fn lint_json_format_carries_the_schema_version() {
    let (out, _, _) = iwa_at_root(&["lint", "corpus/lints/self_send.iwa", "--format", "json"]);
    assert!(out.contains(&format!("\"schema_version\": {}", iwa_engine::SCHEMA_VERSION)));
    assert!(out.contains("\"self-send\""));
}

#[test]
fn lint_and_analyze_render_parse_errors_with_a_caret() {
    let dir = scratch("lint-parse");
    let path = dir.join("bad.iwa");
    std::fs::write(&path, "task a { explode; }").unwrap();
    for cmd in ["lint", "analyze"] {
        let (_, err, code) = iwa(&[cmd, path.to_str().unwrap()]);
        assert_eq!(code, Some(2), "{cmd}: {err}");
        assert!(err.contains("parse error at 1:10"), "{cmd}: {err}");
        assert!(err.contains("1 | task a { explode; }"), "{cmd}: {err}");
        assert!(err.contains("^"), "{cmd}: caret missing: {err}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn check_surfaces_quick_lints_in_human_and_json_output() {
    let dir = scratch("check-lints");
    std::fs::write(dir.join("selfsend.iwa"), "task a { send a.m; accept m; }").unwrap();
    let (out, _, _) = iwa(&["check", dir.to_str().unwrap()]);
    assert!(out.contains("warning[self-send]"), "{out}");
    assert!(out.contains("^^^^"), "caret under the send keyword: {out}");
    let (out, _, _) = iwa(&["check", dir.to_str().unwrap(), "--json"]);
    assert!(out.contains("\"diagnostics\""), "{out}");
    assert!(out.contains("\"self-send\""), "{out}");
    std::fs::remove_dir_all(&dir).unwrap();
}

// ------------------------------------------------------------- tracing

/// `--trace-out` must produce a document Chrome's `about:tracing` and
/// Perfetto actually load: a `traceEvents` array of complete (`ph: "X"`)
/// events with numeric `ts`/`dur`.
fn assert_loadable_chrome_trace(path: &std::path::Path) -> serde_json::Value {
    let text = std::fs::read_to_string(path).expect("trace file written");
    let doc: serde_json::Value = serde_json::from_str(&text).expect("trace is valid JSON");
    let events = doc["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty(), "trace has no spans");
    for ev in events {
        assert_eq!(ev["ph"], "X", "complete events only: {ev:?}");
        assert!(ev["name"].as_str().is_some(), "{ev:?}");
        assert!(ev["ts"].as_u64().is_some(), "{ev:?}");
        assert!(ev["dur"].as_u64().is_some(), "{ev:?}");
        assert!(ev["pid"].as_u64().is_some(), "{ev:?}");
        assert!(ev["tid"].as_u64().is_some(), "{ev:?}");
    }
    doc
}

#[test]
fn analyze_trace_out_writes_a_loadable_chrome_trace() {
    let dir = scratch("trace-plain");
    let trace = dir.join("trace.json");
    let (_, err, code) = iwa(&["analyze", "fixture:fig1", "--trace-out", trace.to_str().unwrap()]);
    assert_eq!(code, Some(1), "fig1 flags: {err}");
    let doc = assert_loadable_chrome_trace(&trace);
    let names: Vec<&str> = doc["traceEvents"]
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|e| e["name"].as_str())
        .collect();
    for phase in ["syncgraph", "refined", "stall"] {
        assert!(names.contains(&phase), "missing {phase} span: {names:?}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn ladder_mode_trace_out_records_rung_spans() {
    let dir = scratch("trace-ladder");
    let trace = dir.join("trace.json");
    let (_, err, code) = iwa(&[
        "analyze",
        "fixture:fig2b",
        "--max-steps",
        "200000",
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(1), "fig2b deadlocks: {err}");
    let doc = assert_loadable_chrome_trace(&trace);
    let names: Vec<String> = doc["traceEvents"]
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|e| e["name"].as_str().map(str::to_owned))
        .collect();
    assert!(names.iter().any(|n| n == "ladder"), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with("rung ")), "{names:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

// --------------------------------------------------------------- bench

#[test]
fn bench_smoke_writes_a_report_that_its_own_validator_accepts() {
    let dir = scratch("bench-smoke");
    let out_path = dir.join("BENCH_core.json");
    let hist_path = dir.join("bench_history.jsonl");
    let hist = hist_path.to_str().unwrap();
    let (out, err, code) = iwa(&[
        "bench",
        "--smoke",
        "--out",
        out_path.to_str().unwrap(),
        "--history",
        hist,
    ]);
    assert_eq!(code, Some(0), "{err}");
    assert!(out.contains("wrote"), "{out}");
    assert!(out.contains("appended"), "{out}");

    let text = std::fs::read_to_string(&out_path).unwrap();
    let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    assert_eq!(v["schema_version"], 1);
    assert_eq!(v["mode"], "smoke");
    assert!(!v["rows"].as_array().unwrap().is_empty());

    let (out, err, code) = iwa(&["bench", "--validate", out_path.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{err}");
    assert!(out.contains("valid"), "{out}");

    // Bare --validate gates against the record the first run appended;
    // an identical rerun must pass on every row and append a second line.
    let (out, err, code) = iwa(&[
        "bench",
        "--smoke",
        "--out",
        out_path.to_str().unwrap(),
        "--history",
        hist,
        "--validate",
        "--label",
        "rerun",
    ]);
    assert_eq!(code, Some(0), "{err}");
    assert!(out.contains("trajectory check"), "{out}");
    assert!(out.contains("(ok)"), "{out}");
    let lines = std::fs::read_to_string(&hist_path).unwrap().lines().count();
    assert_eq!(lines, 2);

    // --no-history runs the suite without touching the trajectory.
    let (out, err, code) = iwa(&[
        "bench",
        "--smoke",
        "--out",
        out_path.to_str().unwrap(),
        "--history",
        hist,
        "--no-history",
    ]);
    assert_eq!(code, Some(0), "{err}");
    assert!(!out.contains("appended"), "{out}");
    let lines = std::fs::read_to_string(&hist_path).unwrap().lines().count();
    assert_eq!(lines, 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bench_trajectory_gate_rejects_a_step_regression() {
    let dir = scratch("bench-trajectory");
    let out_path = dir.join("BENCH_core.json");
    let hist_path = dir.join("bench_history.jsonl");
    // A fabricated trajectory whose steps are impossibly low: the real
    // run must exceed it by far more than 15% and be rejected without
    // appending.
    std::fs::write(
        &hist_path,
        "{\"schema_version\":1,\"mode\":\"smoke\",\"label\":\"tiny\",\"seed\":7,\
         \"rows\":[{\"family\":\"replicated_pairs\",\"size\":4,\"steps\":1,\
         \"scc_runs\":1,\"heads_examined\":1,\"wall_ms\":0}]}\n",
    )
    .unwrap();
    let (_, err, code) = iwa(&[
        "bench",
        "--smoke",
        "--out",
        out_path.to_str().unwrap(),
        "--history",
        hist_path.to_str().unwrap(),
        "--validate",
    ]);
    assert_ne!(code, Some(0));
    assert!(err.contains("regression"), "{err}");
    let lines = std::fs::read_to_string(&hist_path).unwrap().lines().count();
    assert_eq!(lines, 1, "a failing run must not append");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bench_validate_rejects_a_malformed_report() {
    let dir = scratch("bench-invalid");
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{}").unwrap();
    let (_, err, code) = iwa(&["bench", "--validate", bad.to_str().unwrap()]);
    assert_ne!(code, Some(0));
    assert!(!err.is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Kills a spawned daemon if the test panics before the clean shutdown.
struct ReapOnDrop(Option<std::process::Child>);

impl ReapOnDrop {
    /// Hand the child back for a clean wait; the guard stands down.
    fn release(mut self) -> std::process::Child {
        self.0.take().unwrap()
    }
}

impl Drop for ReapOnDrop {
    fn drop(&mut self) {
        if let Some(child) = &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

#[test]
fn serve_e2e_roundtrip_cache_and_clean_shutdown() {
    let dir = scratch("serve-e2e");
    let port_file = dir.join("port");
    let child = Command::new(env!("CARGO_BIN_EXE_iwa"))
        .args(["serve", "--port-file", port_file.to_str().unwrap()])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let child = ReapOnDrop(Some(child));

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let port: u16 = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if let Ok(p) = text.trim().parse() {
                break p;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "daemon never wrote its port file"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    };

    let recv = std::time::Duration::from_secs(10);
    let mut client = iwa_serve::Client::connect(("127.0.0.1", port)).expect("connect");
    let pong = client
        .request(&iwa_serve::Client::simple_request(1, "ping"), recv)
        .unwrap();
    assert_eq!(pong["status"], "ok");

    let first = client
        .request(&iwa_serve::Client::analyze_request(2, CLEAN, Some(5_000)), recv)
        .unwrap();
    assert_eq!(first["status"], "ok", "{first:?}");
    assert_eq!(first["report"]["verdict"], "Clean");
    assert_eq!(first["cached"], false);
    let second = client
        .request(&iwa_serve::Client::analyze_request(3, CLEAN, Some(5_000)), recv)
        .unwrap();
    assert_eq!(second["cached"], true, "resubmission hits the cache");

    let bye = client
        .request(&iwa_serve::Client::simple_request(4, "shutdown"), recv)
        .unwrap();
    assert_eq!(bye["status"], "ok");

    let out = child
        .release()
        .wait_with_output()
        .expect("daemon exits after the shutdown op");
    assert_eq!(out.status.code(), Some(0), "daemon drains and exits clean");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("listening on"), "{stdout}");
    // The final stats block is machine-readable.
    let json_start = stdout.find('{').expect("stats JSON on exit");
    let v: serde_json::Value = serde_json::from_str(&stdout[json_start..]).unwrap();
    assert_eq!(v["received"], 2);
    assert_eq!(v["cache_hits"], 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn serve_bench_smoke_report_validates_and_survives_faults() {
    let corpus = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus");
    let dir = scratch("serve-bench");
    let out_path = dir.join("BENCH_serve.json");

    let (out, err, code) = iwa(&[
        "serve-bench",
        "--smoke",
        "--corpus",
        corpus.to_str().unwrap(),
        "--clients",
        "2",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "stdout: {out}\nstderr: {err}");
    assert!(out.contains("0 hangs"), "{out}");

    let (out, err, code) = iwa(&["serve-bench", "--validate", out_path.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{err}");
    assert!(out.contains("valid"), "{out}");

    // Same smoke run under an active fault plan: still exit 0, still no
    // hangs — the injected failures surface as explicit responses.
    let faulted = dir.join("BENCH_serve_faulted.json");
    let (out, err, code) = iwa(&[
        "serve-bench",
        "--smoke",
        "--corpus",
        corpus.to_str().unwrap(),
        "--clients",
        "2",
        "--fault",
        "certify=panic:skip=1:times=2;parse=sleep:50:times=2",
        "--out",
        faulted.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "stdout: {out}\nstderr: {err}");
    assert!(out.contains("0 hangs"), "{out}");
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------- lok frontend

#[test]
fn analyzing_a_lok_cycle_exits_nonzero_with_a_span_anchored_witness() {
    let (out, err, code) = iwa_at_root(&["analyze", "corpus/locks/three_cycle.lok"]);
    assert_eq!(code, Some(1), "stdout: {out}\nstderr: {err}");
    assert!(out.contains("anomalous"), "{out}");
    // The lint rides along in text mode: the full acquisition chain with
    // one source span per acquire site.
    assert!(out.contains("a → b → c → a"), "{out}");
    assert!(out.contains("holds a (6:13) while locking b (6:21)"), "{out}");
}

#[test]
fn analyzing_a_clean_lok_file_exits_zero() {
    let (out, err, code) = iwa_at_root(&["analyze", "corpus/locks/ordered_chain.lok"]);
    assert_eq!(code, Some(0), "stdout: {out}\nstderr: {err}");
    assert!(out.contains("verdict   : clean"), "{out}");
}

#[test]
fn lok_rejects_iwa_only_flags_with_clear_messages() {
    let (_, err, code) = iwa_at_root(&["analyze", "corpus/locks/abba.lok", "--tier", "pairs"]);
    assert_eq!(code, Some(2));
    assert!(err.contains("--tier applies to .iwa programs"), "{err}");
    let (_, err, code) = iwa_at_root(&["analyze", "corpus/locks/abba.lok", "--no-transforms"]);
    assert_eq!(code, Some(2));
    assert!(err.contains("--no-transforms applies to .iwa programs"), "{err}");
}

#[test]
fn the_lang_flag_forces_a_frontend_regardless_of_extension() {
    let dir = std::env::temp_dir().join("iwa_cli_lang_flag");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("prog.txt");
    std::fs::write(&path, "thread t { lock a; lock b; unlock b; unlock a; }").unwrap();
    // Unknown extension defaults to tasklang: a parse error.
    let (_, err, code) = iwa(&["analyze", path.to_str().unwrap()]);
    assert_eq!(code, Some(2), "{err}");
    // Forced to the lock frontend it is a clean two-lock program.
    let (out, err, code) = iwa(&["analyze", path.to_str().unwrap(), "--lang", "lok"]);
    assert_eq!(code, Some(0), "stdout: {out}\nstderr: {err}");
    let (_, err, code) = iwa(&["analyze", path.to_str().unwrap(), "--lang", "ada"]);
    assert_eq!(code, Some(2));
    assert!(err.contains("unknown language"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn check_over_the_locks_corpus_is_byte_identical_for_any_job_count() {
    let locks = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus/locks");
    let locks = locks.to_str().unwrap();
    let run = |jobs: &str| {
        let (out, err, code) =
            iwa(&["check", locks, "--json", "--max-steps", "200000", "-j", jobs]);
        assert_eq!(code, Some(1), "stdout: {out}\nstderr: {err}");
        iwa_testsupport::masked(&out)
    };
    let sequential = run("1");
    assert_eq!(sequential, run("2"), "-j 2 must match -j 1");
    assert_eq!(sequential, run("8"), "-j 8 must match -j 1");
}

#[test]
fn lint_reports_skipped_files_instead_of_silently_dropping_them() {
    let dir = std::env::temp_dir().join("iwa_cli_lint_skip");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("ok.iwa"), "task a { send b.m; } task b { accept m; }").unwrap();
    std::fs::write(dir.join("notes.md"), "# not a model\n").unwrap();
    let (out, err, code) = iwa(&["lint", dir.to_str().unwrap()]);
    assert_eq!(code, Some(0), "stdout: {out}\nstderr: {err}");
    assert!(out.contains("notes.md: skipped (unknown language)"), "{out}");
    assert!(out.contains("1 skipped"), "{out}");
    let (out, _, _) = iwa(&["lint", dir.to_str().unwrap(), "--format", "json"]);
    let v: serde_json::Value = serde_json::from_str(&out).expect("valid json");
    let skipped = v["skipped"].as_array().expect("skipped array");
    assert_eq!(skipped.len(), 1, "{out}");
    assert!(skipped[0].as_str().unwrap().ends_with("notes.md"), "{out}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lint_explain_prints_doc_severity_and_applicable_frontends() {
    let (out, _, code) = iwa(&["lint", "--explain", "lock-order-cycle"]);
    assert_eq!(code, Some(0), "{out}");
    assert!(out.contains("lock-order-cycle"), "{out}");
    assert!(out.contains("default severity"), "{out}");
    assert!(out.contains("applies to"), "{out}");
    assert!(out.contains("lok"), "{out}");
    // A tasklang-only lint names the tasklang frontend, not lok.
    let (out, _, code) = iwa(&["lint", "--explain", "silent-task"]);
    assert_eq!(code, Some(0), "{out}");
    assert!(out.contains("iwa"), "{out}");
    // Unknown lints list the known names.
    let (_, err, code) = iwa(&["lint", "--explain", "no-such-lint"]);
    assert_eq!(code, Some(2));
    assert!(err.contains("unknown lint"), "{err}");
    assert!(err.contains("lock-order-cycle"), "{err}");
}

#[test]
fn lok_lints_fire_on_the_locks_corpus() {
    let (out, _, code) = iwa_at_root(&["lint", "corpus/locks/double_lock.lok"]);
    assert_eq!(code, Some(1), "double-lock denies: {out}");
    assert!(out.contains("double-lock"), "{out}");
    let (out, _, code) = iwa_at_root(&["lint", "corpus/locks/unbalanced.lok"]);
    assert_eq!(code, Some(0), "warnings alone exit 0: {out}");
    assert!(out.contains("lock-held-at-exit"), "{out}");
    let (out, _, code) = iwa_at_root(&["lint", "corpus/locks/three_cycle.lok"]);
    assert_eq!(code, Some(1), "{out}");
    assert!(out.contains("lock-order-cycle"), "{out}");
}
