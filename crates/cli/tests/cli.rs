//! End-to-end tests of the `iwa` binary.

use std::process::Command;

fn iwa(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_iwa"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn help_prints_usage() {
    let (out, _, code) = iwa(&["help"]);
    assert_eq!(code, Some(0));
    assert!(out.contains("USAGE"));
}

#[test]
fn fixtures_are_listed() {
    let (out, _, code) = iwa(&["fixtures"]);
    assert_eq!(code, Some(0));
    assert!(out.contains("fixture:fig1"));
    assert!(out.contains("fixture:fig2b"));
}

#[test]
fn analyzing_a_clean_fixture_exits_zero() {
    // lemma2 is deadlock-flagged at base tier, but the pair tier plus the
    // balanced counts make it fully clean.
    let (out, _, code) = iwa(&["analyze", "fixture:lemma2", "--tier", "pairs"]);
    assert_eq!(code, Some(0), "{out}");
    assert!(out.contains("deadlock-free"));
    assert!(out.contains("stall-free"));
}

#[test]
fn analyzing_a_deadlock_exits_nonzero_and_names_heads() {
    let (out, _, code) = iwa(&["analyze", "fixture:fig2b", "--oracle"]);
    assert_eq!(code, Some(1));
    assert!(out.contains("potential deadlock"));
    assert!(out.contains("flagged head"));
    assert!(out.contains("oracle"));
    assert!(out.contains("deadlock"));
}

#[test]
fn json_output_is_valid_json() {
    let (out, _, code) = iwa(&["analyze", "fixture:fig2b", "--json"]);
    assert_eq!(code, Some(1));
    let v: serde_json::Value = serde_json::from_str(&out).expect("valid json");
    assert_eq!(v["refined_deadlock_free"], serde_json::Value::Bool(false));
    assert_eq!(v["tasks"], 2);
}

#[test]
fn graph_outputs_dot() {
    let (out, _, code) = iwa(&["graph", "fixture:fig1"]);
    assert_eq!(code, Some(0));
    assert!(out.starts_with("digraph sync_graph"));
    let (out, _, _) = iwa(&["graph", "fixture:fig1", "--clg"]);
    assert!(out.starts_with("digraph clg"));
}

#[test]
fn file_input_works() {
    let dir = std::env::temp_dir().join("iwa_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("prog.iwa");
    std::fs::write(&path, "task a { send b.m; } task b { accept m; }").unwrap();
    let (out, err, code) = iwa(&["analyze", path.to_str().unwrap()]);
    assert_eq!(code, Some(0), "stdout: {out}\nstderr: {err}");
    assert!(out.contains("deadlock-free"));
}

#[test]
fn unknown_fixture_is_a_clean_error() {
    let (_, err, code) = iwa(&["analyze", "fixture:nope"]);
    assert_eq!(code, Some(2));
    assert!(err.contains("unknown fixture"));
}

#[test]
fn parse_errors_are_reported_with_position() {
    let dir = std::env::temp_dir().join("iwa_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.iwa");
    std::fs::write(&path, "task a { explode; }").unwrap();
    let (_, err, code) = iwa(&["analyze", path.to_str().unwrap()]);
    assert_eq!(code, Some(2));
    assert!(err.contains("parse error"));
}

#[test]
fn inline_and_unroll_print_transformed_programs() {
    let dir = std::env::temp_dir().join("iwa_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("procs.iwa");
    std::fs::write(
        &path,
        "proc hello { send b.m; } task a { while { call hello; } } task b { while { accept m; } }",
    )
    .unwrap();
    let (out, _, code) = iwa(&["inline", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(out.contains("send b.m;"));
    assert!(!out.contains("call"));
    assert!(out.contains("while"), "inline keeps loops");
    let (out, _, code) = iwa(&["unroll", path.to_str().unwrap()]);
    assert_eq!(code, Some(0));
    assert!(!out.contains("while"), "unroll removes loops");
    assert_eq!(out.matches("send b.m;").count(), 2, "two copies");
}
