//! `iwa` — static infinite-wait anomaly analyzer for rendezvous programs.
//!
//! ```text
//! iwa analyze <file.iwa | fixture:NAME> [--tier heads|pairs|headtails]
//!             [--oracle] [--json] [--no-transforms] [-j N]
//!             [--deadline-ms N] [--max-steps N] [--start RUNG]
//! iwa check   <file.iwa | dir> [--deadline-ms N] [--max-steps N]
//!             [--start RUNG] [--json] [-j N]
//! iwa graph   <file.iwa | fixture:NAME> [--clg]
//! iwa inline  <file.iwa | fixture:NAME>
//! iwa unroll  <file.iwa | fixture:NAME>
//! iwa fixtures
//! iwa langs
//! iwa help
//! ```
//!
//! Exit codes for `analyze` and `check`: `0` clean at full precision,
//! `1` anomalous, `2` usage or input error, `3` degraded or undecided.

use iwa_analysis::{AnalysisCtx, CertifyOptions, RefinedOptions, StallOptions, StallVerdict, Tier};
use iwa_core::obs::{Meta, Metrics, TraceSink};
use iwa_core::{Budget, FaultPlan, IwaError};
use iwa_engine::{
    CheckOptions, EngineOptions, EngineReport, EngineVerdict, LintStage, Rung, SCHEMA_VERSION,
};
use iwa_frontend::{registry as frontends, Lang, ModelIr};
use iwa_lint::render::{render_diagnostic, render_diagnostics, render_parse_error};
use iwa_lint::{
    quick_registry, registry, registry_for, run_lints, run_lints_chan, run_lints_lok, Diagnostic,
    LintConfig, Severity,
};
use iwa_syncgraph::{dot, Clg, SyncGraph};
use iwa_tasklang::{parse, Program};
use iwa_wavesim::{explore, ExploreConfig, Verdict};
use serde::Serialize;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("lint") => lint(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("serve-bench") => serve_bench(&args[1..]),
        Some("graph") => graph(&args[1..]),
        Some("inline") => transform(&args[1..], Transform::Inline),
        Some("unroll") => transform(&args[1..], Transform::Unroll),
        Some("fixtures") => {
            for (name, p) in iwa_workloads::figures::all_figures() {
                println!(
                    "fixture:{name:<8}  {} tasks, {} rendezvous",
                    p.num_tasks(),
                    p.num_rendezvous()
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("langs") => {
            for f in frontends::all() {
                println!(
                    "{:<6} .{:<6} {}",
                    f.lang().name(),
                    f.extensions().join(", ."),
                    f.description()
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("help") | None => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown subcommand '{other}' (try 'iwa help')")),
    }
}

const USAGE: &str = "\
iwa — static infinite-wait anomaly detection (Masticola & Ryder, ICPP 1990)

USAGE:
    iwa analyze <file.iwa | file.lok | file.chan | fixture:NAME> [OPTIONS]
    iwa check   <file | dir> [OPTIONS]         batch-check a corpus
    iwa lint    <file | dir> [OPTIONS]         run the lint catalog
    iwa lint    --explain [<lint>]             describe one lint, or list
                                               the catalog per frontend
    iwa bench   [--smoke] [--out PATH] [--validate [FILE]] [--label NAME]
                [--history PATH] [--no-history]
    iwa serve   [OPTIONS]                      persistent analysis daemon
    iwa serve-bench [OPTIONS]                  replay benchmark against a daemon
    iwa graph   <file.iwa | fixture:NAME> [--clg]
    iwa inline  <file.iwa | fixture:NAME>   print with procedures inlined
    iwa unroll  <file.iwa | fixture:NAME>   print the Lemma-1 unrolled form
    iwa fixtures
    iwa langs                      list the registered frontends
    iwa help

COMMON OPTIONS (analyze, check, lint):
    --lang iwa|lok|chan            force the frontend for every input file
                                   (default: by extension; .iwa, .lok and
                                   .chan are recognised, explicit files
                                   with an unknown extension fall back to
                                   iwa — see 'iwa langs')
    --json                         machine-readable output
    --deadline-ms N                wall-clock budget (analyze: whole ladder;
                                   check: per file, default 2000)
    --max-steps N                  cooperative-step budget
    --start RUNG                   most precise ladder rung to attempt:
                                   oracle|headtails|pairs|heads|naive
    -j, --jobs N                   worker threads (analyze: per-head fan-out;
                                   check: files in parallel); 0 = all cores

LINT OPTIONS:
    --format text|json|sarif       output format (default: text)
    -W, -A, -D <lint>              set a lint to warn, allow, or deny
    --deny-warnings                promote every warning to an error
    --explain [<lint>]             print a lint's description, default
                                   severity, and applicable frontends;
                                   with no name, list the whole catalog
                                   grouped by frontend
    (directory walks report files no frontend speaks as skipped;
     exit 0: no denials; 1: at least one denial; 2: usage/parse error)

ANALYZE OPTIONS:
    --tier heads|pairs|headtails   refined-algorithm tier (default: heads)
    --oracle                       also run the exhaustive wave oracle
    --no-transforms                skip the §5.1 stall transforms
    --trace-out PATH               write a Chrome trace_event JSON of every
                                   analysis phase (open in about:tracing
                                   or https://ui.perfetto.dev)
    (a budget flag switches analyze to the degradation ladder)

BENCH OPTIONS:
    --smoke                        CI-sized workloads (same schema)
    --out PATH                     where to write the snapshot report
                                   (default: BENCH_core.json)
    --validate FILE                validate an existing report against the
                                   schema instead of running the suite
    --validate                     (no file) gate this run against the last
                                   same-mode trajectory record; fail on a
                                   >15% step regression on any family
    --history PATH                 trajectory file to append to / gate against
                                   (default: reports/bench_history.jsonl)
    --no-history                   run without appending a trajectory record
    --label NAME                   label stored in the appended record

SERVE OPTIONS:
    --addr HOST:PORT               bind address (default 127.0.0.1:0)
    --workers N                    worker threads (default 2)
    --queue N                      admission-queue depth; a full queue sheds
                                   with an explicit retry-after hint
    --deadline-ms N                default per-request deadline (default 2000);
                                   overloaded requests degrade down the ladder
    --grace-ms N                   watchdog grace past the deadline before a
                                   stalled worker is abandoned (default 250)
    --drain-ms N                   graceful-drain budget on shutdown
    --cache N                      verdict-cache capacity (default 4096)
    --start RUNG                   default starting rung for requests
    --fault PLAN                   inject faults (site=action[:ms][:skip=N]
                                   [:times=N][:label=S];...)
    --port-file PATH               write the bound port for scripts to read
    (runs until a client sends the 'shutdown' op)

SERVE-BENCH OPTIONS:
    --corpus PATH                  .iwa corpus to replay (default: corpus)
    --rounds N --clients N         replay shape (defaults 5, 4)
    --mutate-permille N            per-round variant mutation rate (default 10)
    --smoke                        CI-sized run (same schema)
    --fault PLAN                   run the daemon under an active fault plan
    --seed N                       mutation-schedule seed
    --out PATH                     report path (default: BENCH_serve.json)
    --validate FILE                validate an existing report instead
    (exit 1 if any request hangs or any verdict diverges from single-shot)

EXIT CODES (analyze, check):
    0  clean at full precision     1  anomaly flagged
    2  usage or input error        3  degraded or undecided result
";

/// Load a program plus (for real files) its source text, which the
/// diagnostic renderer needs for caret excerpts. Fixtures have no text.
fn load_program(spec: &str) -> Result<(Program, Option<String>), String> {
    if let Some(name) = spec.strip_prefix("fixture:") {
        iwa_workloads::figures::all_figures()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, p)| (p, None))
            .ok_or_else(|| format!("unknown fixture '{name}' (see 'iwa fixtures')"))
    } else {
        let src = std::fs::read_to_string(spec)
            .map_err(|e| format!("cannot read {spec}: {e}"))?;
        match parse(&src) {
            Ok(p) => Ok((p, Some(src))),
            Err(e) => Err(parse_failure(spec, &src, &e)),
        }
    }
}

/// The frontend for `path`: `--lang` wins, then the file extension, then
/// the tasklang default (an explicit file always stands for itself).
/// Thin string-path wrapper over the registry's shared resolver.
fn frontend_for(path: &str, forced: Option<Lang>) -> &'static dyn iwa_frontend::Frontend {
    frontends::resolve(std::path::Path::new(path), forced)
}

/// The canonical `Display` line ("parse error at L:C: …"), followed by
/// the same caret excerpt lint diagnostics get.
fn parse_failure(path: &str, src: &str, e: &IwaError) -> String {
    match render_parse_error(path, src, e) {
        Some(block) => {
            let excerpt: Vec<&str> = block.lines().skip(1).collect();
            format!("{e}\n{}", excerpt.join("\n"))
        }
        None => e.to_string(),
    }
}

#[derive(Serialize)]
struct AnalyzeReport {
    schema_version: u32,
    program: String,
    tasks: usize,
    rendezvous: usize,
    was_unrolled: bool,
    naive_deadlock_free: bool,
    refined_deadlock_free: bool,
    refined_tier: String,
    flagged_heads: Vec<String>,
    stall_verdict: String,
    diagnostics: Vec<Diagnostic>,
    oracle: Option<OracleReport>,
    meta: Meta,
}

#[derive(Serialize)]
struct OracleReport {
    verdict: String,
    states: usize,
    can_terminate: bool,
    deadlock: bool,
    stall: bool,
    /// Rendezvous schedule leading to the first anomaly, human-readable.
    witness: Vec<String>,
    /// The first stuck wave, rendered.
    stuck_wave: Option<String>,
}

fn analyze(args: &[String]) -> Result<ExitCode, String> {
    let mut spec = None;
    let mut tier = Tier::Heads;
    let mut tier_given = false;
    let mut want_oracle = false;
    let mut transforms = true;
    let mut trace_out: Option<String> = None;
    let mut common = CommonOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if common.try_parse(a, &mut it)? {
            continue;
        }
        match a.as_str() {
            "--tier" => {
                tier = match it.next().map(String::as_str) {
                    Some("heads") => Tier::Heads,
                    Some("pairs") => Tier::HeadPairs,
                    Some("headtails") => Tier::HeadTails,
                    other => return Err(format!("bad --tier {other:?}")),
                };
                tier_given = true;
            }
            "--oracle" => want_oracle = true,
            "--no-transforms" => transforms = false,
            "--trace-out" => {
                trace_out =
                    Some(it.next().ok_or("--trace-out needs a path")?.to_owned());
            }
            other if spec.is_none() && !other.starts_with("--") => {
                spec = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let spec = spec.ok_or("missing program (file path or fixture:NAME)")?;

    // Non-tasklang programs (`.lok`, `.chan`) have no single-tier certify
    // pipeline and no Lemma-1 transforms; they always run the engine
    // ladder (the full-precision oracle rung is the default start, so a
    // budget-free run is exact).
    if !spec.starts_with("fixture:")
        && frontend_for(&spec, common.lang).lang() != Lang::Tasklang
    {
        if tier_given {
            return Err("--tier applies to .iwa programs (use --start for other frontends)".into());
        }
        if !transforms {
            return Err("--no-transforms applies to .iwa programs".into());
        }
        return analyze_frontend(&spec, &common, trace_out.as_deref());
    }

    let (program, source) = load_program(&spec)?;
    let trace = trace_out.as_ref().map(|_| TraceSink::new());

    // Any budget flag switches from the single-tier pipeline to the
    // engine's degradation ladder.
    if common.budget_given() {
        let fallback = if tier_given {
            Some(match tier {
                Tier::Heads => Rung::Heads,
                Tier::HeadPairs => Rung::HeadPairs,
                Tier::HeadTails => Rung::HeadTails,
            })
        } else {
            None
        };
        let mut opts = common.engine_options(fallback)?;
        opts.apply_transforms = transforms;
        opts.workers = common.jobs();
        opts.trace = trace.clone();
        let report = iwa_engine::analyze(&program, &opts).map_err(|e| e.to_string())?;
        if let (Some(path), Some(sink)) = (&trace_out, &trace) {
            write_trace(path, sink)?;
        }
        if common.json {
            println!(
                "{}",
                serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
            );
        } else {
            print_engine_report(&spec, &report);
        }
        return Ok(engine_exit(report.verdict, report.degraded));
    }

    let opts = CertifyOptions {
        refined: RefinedOptions {
            tier,
            ..RefinedOptions::default()
        },
        stall: StallOptions {
            apply_transforms: transforms,
            ..StallOptions::default()
        },
    };
    let metrics = Metrics::new();
    let mut builder = AnalysisCtx::builder()
        .workers(common.jobs())
        .metrics(metrics.clone());
    if let Some(sink) = &trace {
        builder = builder.trace(sink.clone());
    }
    let cert = builder
        .build()
        .certify(&program, &opts)
        .map_err(|e| e.to_string())?;
    if let (Some(path), Some(sink)) = (&trace_out, &trace) {
        write_trace(path, sink)?;
    }

    // Downstream graph consumers need the inlined form.
    let program_inlined = iwa_tasklang::transforms::inline_procs(&program)
        .map_err(|e| e.to_string())?;
    let sg = SyncGraph::from_program(&program_inlined);
    let oracle = if want_oracle {
        let e = explore(&sg, &ExploreConfig::default()).map_err(|e| e.to_string())?;
        let witness = e
            .witnesses
            .first()
            .map(|steps| steps.iter().map(|s| s.render(&sg)).collect())
            .unwrap_or_default();
        let stuck_wave = e.anomalies.first().map(|(w, _)| w.render(&sg));
        Some(OracleReport {
            verdict: match e.verdict {
                Verdict::AnomalyFree => "anomaly-free".into(),
                Verdict::Anomalous => "anomalous".into(),
            },
            states: e.states,
            can_terminate: e.can_terminate,
            deadlock: e.has_deadlock(),
            stall: e.has_stall(),
            witness,
            stuck_wave,
        })
    } else {
        None
    };

    // Describe flagged heads in source terms.
    let analysed_sg = if cert.was_unrolled {
        SyncGraph::from_program(&iwa_tasklang::transforms::unroll_twice(&program_inlined))
    } else {
        sg
    };
    let flagged: Vec<String> = cert
        .refined
        .flagged
        .iter()
        .map(|f| {
            let d = analysed_sg.node(f.head);
            let name = d
                .label
                .clone()
                .unwrap_or_else(|| format!("node {}", f.head));
            format!(
                "{} at {} ({}{})",
                analysed_sg.symbols.task_name(d.task),
                name,
                analysed_sg.symbols.signal_name(d.rendezvous.signal),
                d.rendezvous.sign
            )
        })
        .collect();

    let report = AnalyzeReport {
        schema_version: SCHEMA_VERSION,
        program: spec.clone(),
        tasks: program.num_tasks(),
        rendezvous: program.num_rendezvous(),
        was_unrolled: cert.was_unrolled,
        naive_deadlock_free: cert.naive.deadlock_free,
        refined_deadlock_free: cert.refined.deadlock_free,
        refined_tier: format!("{tier:?}"),
        flagged_heads: flagged,
        stall_verdict: match &cert.stall.verdict {
            StallVerdict::StallFree => "stall-free".into(),
            StallVerdict::PossibleStall { signal, sends, accepts } => format!(
                "possible stall on {} ({sends} sends vs {accepts} accepts)",
                program.symbols.signal_name(*signal)
            ),
            StallVerdict::Unknown { reason } => format!("unknown ({reason})"),
        },
        // The quick (AST-level) lints subsume the old validate warnings;
        // `certify` succeeded, so the model is valid and this cannot fail.
        diagnostics: run_lints(
            &AnalysisCtx::builder().workers(common.jobs()).build(),
            &program,
            &LintConfig::default(),
            &quick_registry(),
        )
        .unwrap_or_default(),
        oracle,
        meta: metrics.meta(),
    };

    if common.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        print_human(&report, source.as_deref());
    }
    let clean = report.refined_deadlock_free
        && report.stall_verdict == "stall-free";
    Ok(if clean { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

/// `iwa analyze` for a non-tasklang program (`.lok`, `.chan`): load
/// through the file's frontend, run the engine ladder over the lowered
/// sync graph, and report the frontend's findings (lock-order cycles,
/// channel-wait cycles, livelocks — each with span-anchored witness
/// chains) as lint diagnostics alongside the verdict.
fn analyze_frontend(
    spec: &str,
    common: &CommonOpts,
    trace_out: Option<&str>,
) -> Result<ExitCode, String> {
    let src = std::fs::read_to_string(spec).map_err(|e| format!("cannot read {spec}: {e}"))?;
    let model = frontend_for(spec, common.lang)
        .load(&src)
        .map_err(|e| parse_failure(spec, &src, &e))?;

    let trace = trace_out.map(|_| TraceSink::new());
    let mut opts = common.engine_options(None)?;
    opts.workers = common.jobs();
    opts.trace = trace.clone();
    let report = iwa_engine::analyze_model(&model, &opts).map_err(|e| e.to_string())?;
    if let (Some(path), Some(sink)) = (trace_out, &trace) {
        write_trace(path, sink)?;
    }

    if common.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        print_engine_report(spec, &report);
        for w in &model.warnings {
            println!("warning   : {w}");
        }
        let diags = match &model.ir {
            ModelIr::Lok(m) => run_lints_lok(m, &LintConfig::default(), &registry_for(Lang::Lok)),
            ModelIr::Chan(m) => {
                run_lints_chan(m, &LintConfig::default(), &registry_for(Lang::Chan))
            }
            ModelIr::Tasklang(_) => Vec::new(), // unreachable: gated above
        };
        for d in &diags {
            print!("{}", render_diagnostic(spec, &src, d));
        }
    }
    Ok(engine_exit(report.verdict, report.degraded))
}

/// The flags `analyze` and `check` accept identically — one parser, one
/// set of error messages, whichever subcommand the flag appears under.
#[derive(Default)]
struct CommonOpts {
    json: bool,
    deadline_ms: Option<u64>,
    max_steps: Option<u64>,
    start: Option<String>,
    jobs: Option<usize>,
    lang: Option<Lang>,
}

impl CommonOpts {
    /// Consume `arg` (and its value from `it`) if it is a common flag.
    fn try_parse<'a>(
        &mut self,
        arg: &str,
        it: &mut impl Iterator<Item = &'a String>,
    ) -> Result<bool, String> {
        let mut value = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg {
            "--json" => self.json = true,
            "--deadline-ms" => {
                let v = value("--deadline-ms")?;
                self.deadline_ms =
                    Some(v.parse().map_err(|_| format!("bad --deadline-ms '{v}'"))?);
            }
            "--max-steps" => {
                let v = value("--max-steps")?;
                self.max_steps = Some(v.parse().map_err(|_| format!("bad --max-steps '{v}'"))?);
            }
            "--start" => {
                self.start = Some(value("--start")?.to_owned());
            }
            "-j" | "--jobs" => {
                let v = value("-j")?;
                self.jobs = Some(v.parse().map_err(|_| format!("bad -j '{v}'"))?);
            }
            "--lang" => {
                self.lang = Some(Lang::from_name(value("--lang")?)?);
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Did any *budget* flag appear? (Switches `analyze` to ladder mode;
    /// `--json`/`-j` alone do not.)
    fn budget_given(&self) -> bool {
        self.deadline_ms.is_some() || self.max_steps.is_some() || self.start.is_some()
    }

    /// The worker count, defaulting to 1 (sequential); `-j 0` means all
    /// cores and is resolved by the pool.
    fn jobs(&self) -> usize {
        self.jobs.unwrap_or(1)
    }

    /// Build engine options; `fallback_start` supplies a start rung when
    /// `--start` was not given (e.g. mapped from `--tier`). `workers`
    /// stays at its default — the caller decides which layer `-j` feeds
    /// (per-head fan-out for `analyze`, file fan-out for `check`).
    fn engine_options(&self, fallback_start: Option<Rung>) -> Result<EngineOptions, String> {
        let start = match &self.start {
            Some(s) => s.parse::<Rung>()?,
            None => fallback_start.unwrap_or(Rung::Oracle),
        };
        Ok(EngineOptions {
            start,
            deadline: self.deadline_ms.map(std::time::Duration::from_millis),
            max_steps: self.max_steps,
            ..EngineOptions::default()
        })
    }
}

fn engine_exit(verdict: EngineVerdict, degraded: bool) -> ExitCode {
    match verdict {
        EngineVerdict::Anomalous => ExitCode::FAILURE,
        EngineVerdict::Clean if !degraded => ExitCode::SUCCESS,
        _ => ExitCode::from(3),
    }
}

fn print_engine_report(spec: &str, r: &EngineReport) {
    println!("program   : {spec}");
    let verdict = match r.verdict {
        EngineVerdict::Clean => "clean",
        EngineVerdict::Anomalous => "anomalous",
        EngineVerdict::Unknown => "unknown",
    };
    if r.degraded {
        println!("verdict   : {verdict} (degraded: produced by rung '{}')", r.rung);
    } else {
        println!("verdict   : {verdict} (rung '{}')", r.rung);
    }
    println!("ladder    : {} ms total", r.elapsed_ms);
    for a in &r.attempts {
        print!(
            "    {:<10} {:<16} {:>6} ms {:>10} steps",
            a.rung.name(),
            a.outcome,
            a.elapsed_ms,
            a.steps
        );
        match &a.detail {
            Some(d) => println!("  ({d})"),
            None => println!(),
        }
    }
    for f in &r.flagged {
        println!("flagged   : {f}");
    }
}

fn check(args: &[String]) -> Result<ExitCode, String> {
    let mut target = None;
    let mut faults = None;
    let mut retries: u32 = 1;
    let mut common = CommonOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if common.try_parse(a, &mut it)? {
            continue;
        }
        match a.as_str() {
            "--fault" => {
                let spec = it.next().ok_or("--fault needs a plan spec")?;
                faults = Some(FaultPlan::parse(spec).map_err(|e| format!("bad --fault: {e}"))?);
            }
            "--retries" => {
                let v = it.next().ok_or("--retries needs a count")?;
                retries = v.parse().map_err(|_| format!("bad --retries '{v}'"))?;
            }
            other if target.is_none() && !other.starts_with("--") => {
                target = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let target = target.ok_or("missing path (a .iwa file or a directory)")?;
    let mut opts = common.engine_options(None)?;
    if opts.deadline.is_none() {
        // Batch runs always carry a per-file deadline: one adversarial
        // input must not stall the whole corpus.
        opts.deadline = Some(std::time::Duration::from_millis(2_000));
    }

    let sources =
        iwa_engine::collect_sources(std::path::Path::new(&target)).map_err(|e| e.to_string())?;
    if sources.files.is_empty() {
        return Err(format!("no analyzable files under {target}"));
    }
    let summary = iwa_engine::check_batch(
        &sources.files,
        &CheckOptions {
            engine: opts,
            jobs: common.jobs(),
            batch_deadline: None,
            // Surface the AST-level lints (the old validate warnings)
            // with every batch check; graph lints stay behind `iwa lint`.
            lint: LintStage::Quick,
            lint_config: LintConfig::default(),
            faults,
            retry: iwa_engine::RetryPolicy::with_attempts(retries.max(1)),
            lang: common.lang,
            skipped: sources
                .skipped
                .iter()
                .map(|p| p.display().to_string())
                .collect(),
        },
    );

    if common.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?
        );
    } else {
        for f in &summary.files {
            let verdict = match f.verdict {
                Some(EngineVerdict::Clean) => "clean",
                Some(EngineVerdict::Anomalous) => "anomalous",
                Some(EngineVerdict::Unknown) => "unknown",
                None => "-",
            };
            print!("{:<14} {:<9} {}", f.status, verdict, f.path);
            if let Some(rung) = f.rung {
                print!("  [{}{}]", rung.name(), if f.degraded { ", degraded" } else { "" });
            }
            if let Some(e) = &f.error {
                print!("  ({e})");
            }
            println!();
            if !f.diagnostics.is_empty() {
                let src = std::fs::read_to_string(&f.path).unwrap_or_default();
                print!("{}", render_diagnostics(&f.path, &src, &f.diagnostics));
            }
        }
        for s in &summary.skipped {
            println!("{:<14} {:<9} {s}  (unknown language)", "skipped", "-");
        }
        println!(
            "checked {} files in {} ms: {} clean, {} anomalous, {} unknown, \
             {} degraded, {} errors, {} panicked, {} skipped",
            summary.total,
            summary.elapsed_ms,
            summary.clean,
            summary.anomalous,
            summary.unknown,
            summary.degraded,
            summary.errors,
            summary.panicked,
            summary.skipped.len(),
        );
    }
    Ok(ExitCode::from(summary.exit_code()))
}


/// Serialize the recorded spans in Chrome `trace_event` format, loadable
/// by `about:tracing` and Perfetto.
fn write_trace(path: &str, sink: &TraceSink) -> Result<(), String> {
    let doc = sink.to_chrome_trace();
    let json = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
    eprintln!("trace written to {path} (open in chrome://tracing or ui.perfetto.dev)");
    Ok(())
}

fn bench(args: &[String]) -> Result<ExitCode, String> {
    let mut smoke = false;
    let mut out: Option<String> = None;
    // `--validate FILE` checks a snapshot's schema; bare `--validate` gates
    // this run against the recorded trajectory.
    let mut validate_file: Option<String> = None;
    let mut validate_trajectory = false;
    let mut history = iwa_bench::history::DEFAULT_HISTORY_PATH.to_owned();
    let mut no_history = false;
    let mut label = String::new();
    let mut i = 0;
    while i < args.len() {
        let takes_value = |i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(takes_value(&mut i, "--out")?),
            "--history" => history = takes_value(&mut i, "--history")?,
            "--no-history" => no_history = true,
            "--label" => label = takes_value(&mut i, "--label")?,
            "--validate" => {
                // A following non-flag operand means "validate this
                // snapshot's schema"; otherwise gate the trajectory.
                match args.get(i + 1) {
                    Some(next) if !next.starts_with("--") => {
                        validate_file = Some(next.clone());
                        i += 1;
                    }
                    _ => validate_trajectory = true,
                }
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
        i += 1;
    }

    if let Some(path) = validate_file {
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        let v = serde_json::from_str(&src)
            .map_err(|e| format!("{path}: invalid JSON: {e}"))?;
        iwa_bench::suite::validate_report(&v).map_err(|e| format!("{path}: {e}"))?;
        println!("{path}: valid (schema v{})", iwa_bench::suite::BENCH_SCHEMA_VERSION);
        return Ok(ExitCode::SUCCESS);
    }

    let report = iwa_bench::suite::run_suite(smoke);
    for row in &report.rows {
        println!(
            "{:<18} size {:>3}  {:>6} ms {:>12} steps  {:>5} heads examined",
            row.family, row.size, row.wall_ms, row.steps, row.metrics.heads_examined
        );
    }

    // Gate against the trajectory BEFORE writing anything: a regressing run
    // must neither pollute the history nor look like a fresh baseline.
    if validate_trajectory {
        let lines = iwa_bench::history::validate_trajectory(
            &history,
            &report,
            iwa_bench::history::DEFAULT_STEP_REGRESSION_PCT,
        )
        .map_err(|e| format!("bench trajectory regression:\n{e}"))?;
        println!("trajectory check against {history}:");
        for line in lines {
            println!("  {line}");
        }
    }

    let path = out.unwrap_or_else(|| "BENCH_core.json".to_owned());
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(&path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!(
        "wrote {path} ({} rows, mode {})",
        report.rows.len(),
        report.mode
    );
    if !no_history {
        let record = iwa_bench::history::HistoryRecord::from_report(&report, &label);
        iwa_bench::history::append(&history, &record)?;
        println!("appended {} record to {history}", report.mode);
    }
    Ok(ExitCode::SUCCESS)
}

fn serve(args: &[String]) -> Result<ExitCode, String> {
    let mut opts = iwa_serve::ServeOptions::default();
    let mut port_file: Option<String> = None;
    let mut it = args.iter();
    let next = |flag: &str, it: &mut std::slice::Iter<String>| {
        it.next()
            .map(String::as_str)
            .ok_or_else(|| format!("{flag} needs a value"))
            .map(str::to_owned)
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => opts.addr = next("--addr", &mut it)?,
            "--workers" => {
                let v = next("--workers", &mut it)?;
                opts.workers = v.parse().map_err(|_| format!("bad --workers '{v}'"))?;
            }
            "--queue" => {
                let v = next("--queue", &mut it)?;
                opts.queue_cap = v.parse().map_err(|_| format!("bad --queue '{v}'"))?;
            }
            "--deadline-ms" => {
                let v = next("--deadline-ms", &mut it)?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --deadline-ms '{v}'"))?;
                opts.default_deadline = std::time::Duration::from_millis(ms);
            }
            "--grace-ms" => {
                let v = next("--grace-ms", &mut it)?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --grace-ms '{v}'"))?;
                opts.watchdog_grace = std::time::Duration::from_millis(ms);
            }
            "--drain-ms" => {
                let v = next("--drain-ms", &mut it)?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --drain-ms '{v}'"))?;
                opts.drain_timeout = std::time::Duration::from_millis(ms);
            }
            "--cache" => {
                let v = next("--cache", &mut it)?;
                opts.cache_cap = v.parse().map_err(|_| format!("bad --cache '{v}'"))?;
            }
            "--start" => {
                opts.start = next("--start", &mut it)?.parse::<Rung>()?;
            }
            "--fault" => {
                let spec = next("--fault", &mut it)?;
                opts.faults =
                    Some(FaultPlan::parse(&spec).map_err(|e| format!("bad --fault: {e}"))?);
            }
            "--port-file" => port_file = Some(next("--port-file", &mut it)?),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    if opts.faults.is_none() {
        opts.faults = FaultPlan::from_env().map_err(|e| format!("bad fault env: {e}"))?;
    }

    let server = iwa_serve::Server::start(opts).map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    println!("iwa serve listening on {addr} (send the 'shutdown' op to stop)");
    if let Some(path) = port_file {
        std::fs::write(&path, addr.port().to_string())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    let stats = server.join();
    println!(
        "{}",
        serde_json::to_string_pretty(&stats).map_err(|e| e.to_string())?
    );
    Ok(ExitCode::SUCCESS)
}

fn serve_bench(args: &[String]) -> Result<ExitCode, String> {
    let mut opts = iwa_serve::ServeBenchOptions::default();
    let mut out: Option<String> = None;
    let mut validate: Option<String> = None;
    let mut it = args.iter();
    let next = |flag: &str, it: &mut std::slice::Iter<String>| {
        it.next()
            .map(String::as_str)
            .ok_or_else(|| format!("{flag} needs a value"))
            .map(str::to_owned)
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--corpus" => opts.corpus = next("--corpus", &mut it)?.into(),
            "--rounds" => {
                let v = next("--rounds", &mut it)?;
                opts.rounds = v.parse().map_err(|_| format!("bad --rounds '{v}'"))?;
            }
            "--clients" => {
                let v = next("--clients", &mut it)?;
                opts.clients = v.parse().map_err(|_| format!("bad --clients '{v}'"))?;
            }
            "--mutate-permille" => {
                let v = next("--mutate-permille", &mut it)?;
                opts.mutate_permille =
                    v.parse().map_err(|_| format!("bad --mutate-permille '{v}'"))?;
            }
            "--fault" => {
                let spec = next("--fault", &mut it)?;
                opts.faults =
                    Some(FaultPlan::parse(&spec).map_err(|e| format!("bad --fault: {e}"))?);
            }
            "--seed" => {
                let v = next("--seed", &mut it)?;
                opts.seed = v.parse().map_err(|_| format!("bad --seed '{v}'"))?;
            }
            "--out" => out = Some(next("--out", &mut it)?),
            "--validate" => validate = Some(next("--validate", &mut it)?),
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }

    if let Some(path) = validate {
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {path}: {e}"))?;
        let v = serde_json::from_str(&src)
            .map_err(|e| format!("{path}: invalid JSON: {e}"))?;
        iwa_serve::validate_report(&v).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "{path}: valid (schema v{})",
            iwa_serve::BENCH_SERVE_SCHEMA_VERSION
        );
        return Ok(ExitCode::SUCCESS);
    }

    let report = iwa_serve::run_bench(&opts)?;
    let get = |k: &str| report.get(k).and_then(serde::Value::as_u64).unwrap_or(0);
    println!(
        "serve-bench: {} requests, {} ok ({} cached), {} errors, {} shed, \
         {} timeouts, {} cancelled, {} hangs",
        get("requests"),
        get("ok"),
        get("cached_responses"),
        get("errors"),
        get("shed"),
        get("timeouts"),
        get("cancelled"),
        get("hangs"),
    );
    println!(
        "cache: {} hits / {} misses; p50 {} ms, p99 {} ms; {} verdict mismatches",
        get("cache_hits"),
        get("cache_misses"),
        get("p50_ms"),
        get("p99_ms"),
        get("verdict_mismatches"),
    );
    let path = out.unwrap_or_else(|| "BENCH_serve.json".to_owned());
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(&path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("wrote {path}");
    if get("hangs") > 0 || get("verdict_mismatches") > 0 {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

#[derive(Serialize)]
struct LintReport {
    schema_version: u32,
    files: Vec<LintFileReport>,
    /// Files the directory walk saw but no frontend speaks, each
    /// paths; the text renderer suffixes "skipped (unknown language)".
    skipped: Vec<String>,
}

#[derive(Serialize)]
struct LintFileReport {
    path: String,
    lang: String,
    diagnostics: Vec<Diagnostic>,
}

/// `iwa lint --explain <lint>`: the lint's registry card — description,
/// default severity, and which frontends it applies to (the same
/// applicability matrix `registry_for` filters by).
fn explain_lint(name: &str) -> Result<ExitCode, String> {
    let passes = registry();
    let Some(pass) = passes.iter().find(|p| p.lint().name == name) else {
        let known: Vec<&str> = passes.iter().map(|p| p.lint().name).collect();
        return Err(format!(
            "unknown lint '{name}'; known lints: {}",
            known.join(", ")
        ));
    };
    let l = pass.lint();
    println!("{}", l.name);
    println!("  default severity : {}", l.default_severity);
    println!("  description      : {}", l.description);
    let frontends: Vec<String> = l
        .applies_to
        .iter()
        .map(|lang| {
            let f = frontends::by_lang(*lang);
            format!("{} (.{})", lang.name(), f.extensions().join(", ."))
        })
        .collect();
    println!("  applies to       : {}", frontends.join(", "));
    Ok(ExitCode::SUCCESS)
}

/// Bare `iwa lint --explain`: the whole catalog, grouped by the frontend
/// each lint applies to (a lint speaking several frontends appears under
/// each of them).
fn list_lints() -> Result<ExitCode, String> {
    for f in frontends::all() {
        let lang = f.lang();
        let passes = registry_for(lang);
        println!("{} (.{}): {} lints", lang.name(), f.extensions().join(", ."), passes.len());
        for p in &passes {
            let l = p.lint();
            println!("  {:<22} {:<7} {}", l.name, l.default_severity.to_string(), l.description);
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn lint(args: &[String]) -> Result<ExitCode, String> {
    let mut target = None;
    let mut format: Option<String> = None;
    let mut explain: Option<Option<String>> = None;
    let mut config = LintConfig::default();
    let mut common = CommonOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if common.try_parse(a, &mut it)? {
            continue;
        }
        match a.as_str() {
            "--explain" => {
                // A following non-flag operand names one lint; bare
                // `--explain` lists the catalog grouped by frontend.
                explain = match it.as_slice().first() {
                    Some(next) if !next.starts_with('-') => {
                        Some(Some(it.next().expect("just peeked").clone()))
                    }
                    _ => Some(None),
                };
            }
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                match v.as_str() {
                    "text" | "json" | "sarif" => format = Some(v.clone()),
                    other => return Err(format!("bad --format '{other}' (text|json|sarif)")),
                }
            }
            "--deny-warnings" => config.deny_warnings = true,
            "-W" | "-A" | "-D" => {
                let sev = match a.as_str() {
                    "-W" => Severity::Warn,
                    "-A" => Severity::Allow,
                    _ => Severity::Deny,
                };
                let name = it.next().ok_or_else(|| format!("{a} needs a lint name"))?;
                if !LintConfig::is_known(name) {
                    return Err(format!("unknown lint '{name}' (see 'iwa lint --help')"));
                }
                config.levels.push((name.clone(), sev));
            }
            other if target.is_none() && !other.starts_with('-') => {
                target = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    if let Some(request) = explain {
        return match request {
            Some(name) => explain_lint(&name),
            None => list_lints(),
        };
    }
    let target = target.ok_or("missing path (a source file or a directory)")?;
    if common.start.is_some() {
        return Err("--start applies to analyze/check, not lint".into());
    }
    let format = match format {
        Some(f) => f,
        None if common.json => "json".to_owned(),
        None => "text".to_owned(),
    };

    // The shared budget flags feed the graph lints through AnalysisCtx —
    // an exhausted budget silences a graph lint, never corrupts it.
    let mut budget = Budget::unlimited();
    if let Some(ms) = common.deadline_ms {
        budget = budget.and_deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(steps) = common.max_steps {
        budget = budget.and_max_steps(steps);
    }
    let ctx = AnalysisCtx::builder()
        .budget(budget)
        .workers(common.jobs())
        .build();

    let collected =
        iwa_engine::collect_sources(std::path::Path::new(&target)).map_err(|e| e.to_string())?;
    if collected.files.is_empty() {
        return Err(format!("no lintable files under {target}"));
    }
    let skipped: Vec<String> = collected
        .skipped
        .iter()
        .map(|p| p.display().to_string())
        .collect();

    // Each file runs the catalog slice its frontend speaks — the same
    // applicability matrix `--explain` prints.
    let mut per_file: Vec<(String, String, Vec<Diagnostic>)> = Vec::new();
    let mut sources: Vec<String> = Vec::new();
    for path in &collected.files {
        let display = path.display().to_string();
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {display}: {e}"))?;
        let frontend = frontend_for(&display, common.lang);
        let lang = frontend.lang();
        let diags = match lang {
            Lang::Tasklang => {
                let program = match parse(&src) {
                    Ok(p) => p,
                    Err(e) => return Err(parse_failure(&display, &src, &e)),
                };
                run_lints(&ctx, &program, &config, &registry_for(lang))
                    .map_err(|e| format!("{display}: {e}"))?
            }
            Lang::Lok => {
                let model = frontend
                    .load(&src)
                    .map_err(|e| parse_failure(&display, &src, &e))?;
                let lok = model.as_lok().expect("the lok frontend produced this model");
                run_lints_lok(lok, &config, &registry_for(lang))
            }
            Lang::Chan => {
                let model = frontend
                    .load(&src)
                    .map_err(|e| parse_failure(&display, &src, &e))?;
                let chan = model.as_chan().expect("the chan frontend produced this model");
                run_lints_chan(chan, &config, &registry_for(lang))
            }
        };
        sources.push(src);
        per_file.push((display, lang.name().to_owned(), diags));
    }

    match format.as_str() {
        "sarif" => {
            let flat: Vec<(String, Vec<Diagnostic>)> = per_file
                .iter()
                .map(|(path, _, diags)| (path.clone(), diags.clone()))
                .collect();
            let doc = iwa_lint::sarif::to_sarif(&flat);
            println!(
                "{}",
                serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?
            );
        }
        "json" => {
            let report = LintReport {
                schema_version: SCHEMA_VERSION,
                files: per_file
                    .iter()
                    .map(|(path, lang, diagnostics)| LintFileReport {
                        path: path.clone(),
                        lang: lang.clone(),
                        diagnostics: diagnostics.clone(),
                    })
                    .collect(),
                skipped: skipped.clone(),
            };
            println!(
                "{}",
                serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
            );
        }
        _ => {
            for ((path, _, diags), src) in per_file.iter().zip(&sources) {
                if !diags.is_empty() {
                    print!("{}", render_diagnostics(path, src, diags));
                }
            }
            for s in &skipped {
                println!("{s}: skipped (unknown language)");
            }
            let errors: usize = per_file
                .iter()
                .flat_map(|(_, _, d)| d)
                .filter(|d| d.severity == Severity::Deny)
                .count();
            let warnings: usize = per_file
                .iter()
                .flat_map(|(_, _, d)| d)
                .filter(|d| d.severity == Severity::Warn)
                .count();
            println!(
                "linted {} file(s): {errors} error(s), {warnings} warning(s), {} skipped",
                per_file.len(),
                skipped.len()
            );
        }
    }

    let denied = per_file
        .iter()
        .any(|(_, _, diags)| iwa_lint::has_denials(diags));
    Ok(if denied {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn print_human(r: &AnalyzeReport, source: Option<&str>) {
    println!("program      : {}", r.program);
    println!("size         : {} tasks, {} rendezvous", r.tasks, r.rendezvous);
    if r.was_unrolled {
        println!("transform    : loops unrolled twice (Lemma 1)");
    }
    println!(
        "naive  (§3.1): {}",
        if r.naive_deadlock_free {
            "deadlock-free"
        } else {
            "potential deadlock"
        }
    );
    println!(
        "refined(§4.2): {} [tier {}]",
        if r.refined_deadlock_free {
            "deadlock-free"
        } else {
            "potential deadlock"
        },
        r.refined_tier
    );
    for f in &r.flagged_heads {
        println!("    flagged head: {f}");
    }
    println!("stall  (§5)  : {}", r.stall_verdict);
    for d in &r.diagnostics {
        // With no source text (fixtures) the renderer degrades to the
        // message plus a bare `--> path` line.
        print!("{}", render_diagnostic(&r.program, source.unwrap_or(""), d));
    }
    if let Some(o) = &r.oracle {
        println!(
            "oracle       : {} ({} states{}{}{})",
            o.verdict,
            o.states,
            if o.deadlock { ", deadlock" } else { "" },
            if o.stall { ", stall" } else { "" },
            if o.can_terminate { ", can terminate" } else { "" },
        );
        if let Some(wave) = &o.stuck_wave {
            println!("    stuck wave : {wave}");
            if o.witness.is_empty() {
                println!("    schedule   : stuck from the start");
            } else {
                for (i, s) in o.witness.iter().enumerate() {
                    println!("    schedule {:>2}: {s}", i + 1);
                }
            }
        }
    }
}

enum Transform {
    Inline,
    Unroll,
}

fn transform(args: &[String], which: Transform) -> Result<ExitCode, String> {
    let spec = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("missing program (file path or fixture:NAME)")?;
    let (program, _) = load_program(spec)?;
    let out = match which {
        Transform::Inline => {
            iwa_tasklang::transforms::inline_procs(&program).map_err(|e| e.to_string())?
        }
        Transform::Unroll => {
            let inlined = iwa_tasklang::transforms::inline_procs(&program)
                .map_err(|e| e.to_string())?;
            iwa_tasklang::transforms::unroll_twice(&inlined)
        }
    };
    print!("{}", out.to_source());
    Ok(ExitCode::SUCCESS)
}

fn graph(args: &[String]) -> Result<ExitCode, String> {
    let mut spec = None;
    let mut want_clg = false;
    for a in args {
        match a.as_str() {
            "--clg" => want_clg = true,
            other if spec.is_none() && !other.starts_with("--") => {
                spec = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let spec = spec.ok_or("missing program (file path or fixture:NAME)")?;
    // Non-tasklang models (`.lok`, `.chan`) lower eagerly; dump the
    // lowered graph directly.
    let sg = if !spec.starts_with("fixture:")
        && frontend_for(&spec, None).lang() != Lang::Tasklang
    {
        let src = std::fs::read_to_string(&spec).map_err(|e| format!("cannot read {spec}: {e}"))?;
        let model = frontend_for(&spec, None)
            .load(&src)
            .map_err(|e| parse_failure(&spec, &src, &e))?;
        model.sync_graph()
    } else {
        let (program, _) = load_program(&spec)?;
        let program = iwa_tasklang::transforms::inline_procs(&program)
            .map_err(|e| e.to_string())?;
        SyncGraph::from_program(&program)
    };
    if want_clg {
        let clg = Clg::build(&sg);
        print!("{}", dot::clg_dot(&sg, &clg));
    } else {
        print!("{}", dot::sync_graph_dot(&sg));
    }
    Ok(ExitCode::SUCCESS)
}
