//! `iwa` — static infinite-wait anomaly analyzer for rendezvous programs.
//!
//! ```text
//! iwa analyze <file.iwa | fixture:NAME> [--tier heads|pairs|headtails]
//!             [--oracle] [--json] [--no-transforms] [-j N]
//!             [--deadline-ms N] [--max-steps N] [--start RUNG]
//! iwa check   <file.iwa | dir> [--deadline-ms N] [--max-steps N]
//!             [--start RUNG] [--json] [-j N]
//! iwa graph   <file.iwa | fixture:NAME> [--clg]
//! iwa inline  <file.iwa | fixture:NAME>
//! iwa unroll  <file.iwa | fixture:NAME>
//! iwa fixtures
//! iwa help
//! ```
//!
//! Exit codes for `analyze` and `check`: `0` clean at full precision,
//! `1` anomalous, `2` usage or input error, `3` degraded or undecided.

use iwa_analysis::{AnalysisCtx, CertifyOptions, RefinedOptions, StallOptions, StallVerdict, Tier};
use iwa_engine::{CheckOptions, EngineOptions, EngineReport, EngineVerdict, Rung, SCHEMA_VERSION};
use iwa_syncgraph::{dot, Clg, SyncGraph};
use iwa_tasklang::{parse, Program};
use iwa_wavesim::{explore, ExploreConfig, Verdict};
use serde::Serialize;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        Some("check") => check(&args[1..]),
        Some("graph") => graph(&args[1..]),
        Some("inline") => transform(&args[1..], Transform::Inline),
        Some("unroll") => transform(&args[1..], Transform::Unroll),
        Some("fixtures") => {
            for (name, p) in iwa_workloads::figures::all_figures() {
                println!(
                    "fixture:{name:<8}  {} tasks, {} rendezvous",
                    p.num_tasks(),
                    p.num_rendezvous()
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("help") | None => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown subcommand '{other}' (try 'iwa help')")),
    }
}

const USAGE: &str = "\
iwa — static infinite-wait anomaly detection (Masticola & Ryder, ICPP 1990)

USAGE:
    iwa analyze <file.iwa | fixture:NAME> [OPTIONS]
    iwa check   <file.iwa | dir> [OPTIONS]     batch-check a corpus
    iwa graph   <file.iwa | fixture:NAME> [--clg]
    iwa inline  <file.iwa | fixture:NAME>   print with procedures inlined
    iwa unroll  <file.iwa | fixture:NAME>   print the Lemma-1 unrolled form
    iwa fixtures
    iwa help

COMMON OPTIONS (analyze and check):
    --json                         machine-readable output
    --deadline-ms N                wall-clock budget (analyze: whole ladder;
                                   check: per file, default 2000)
    --max-steps N                  cooperative-step budget
    --start RUNG                   most precise ladder rung to attempt:
                                   oracle|headtails|pairs|heads|naive
    -j, --jobs N                   worker threads (analyze: per-head fan-out;
                                   check: files in parallel); 0 = all cores

ANALYZE OPTIONS:
    --tier heads|pairs|headtails   refined-algorithm tier (default: heads)
    --oracle                       also run the exhaustive wave oracle
    --no-transforms                skip the §5.1 stall transforms
    (a budget flag switches analyze to the degradation ladder)

EXIT CODES (analyze, check):
    0  clean at full precision     1  anomaly flagged
    2  usage or input error        3  degraded or undecided result
";

fn load_program(spec: &str) -> Result<Program, String> {
    if let Some(name) = spec.strip_prefix("fixture:") {
        iwa_workloads::figures::all_figures()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, p)| p)
            .ok_or_else(|| format!("unknown fixture '{name}' (see 'iwa fixtures')"))
    } else {
        let src = std::fs::read_to_string(spec)
            .map_err(|e| format!("cannot read {spec}: {e}"))?;
        parse(&src).map_err(|e| e.to_string())
    }
}

#[derive(Serialize)]
struct AnalyzeReport {
    schema_version: u32,
    program: String,
    tasks: usize,
    rendezvous: usize,
    was_unrolled: bool,
    naive_deadlock_free: bool,
    refined_deadlock_free: bool,
    refined_tier: String,
    flagged_heads: Vec<String>,
    stall_verdict: String,
    warnings: Vec<String>,
    oracle: Option<OracleReport>,
}

#[derive(Serialize)]
struct OracleReport {
    verdict: String,
    states: usize,
    can_terminate: bool,
    deadlock: bool,
    stall: bool,
    /// Rendezvous schedule leading to the first anomaly, human-readable.
    witness: Vec<String>,
    /// The first stuck wave, rendered.
    stuck_wave: Option<String>,
}

fn analyze(args: &[String]) -> Result<ExitCode, String> {
    let mut spec = None;
    let mut tier = Tier::Heads;
    let mut tier_given = false;
    let mut want_oracle = false;
    let mut transforms = true;
    let mut common = CommonOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if common.try_parse(a, &mut it)? {
            continue;
        }
        match a.as_str() {
            "--tier" => {
                tier = match it.next().map(String::as_str) {
                    Some("heads") => Tier::Heads,
                    Some("pairs") => Tier::HeadPairs,
                    Some("headtails") => Tier::HeadTails,
                    other => return Err(format!("bad --tier {other:?}")),
                };
                tier_given = true;
            }
            "--oracle" => want_oracle = true,
            "--no-transforms" => transforms = false,
            other if spec.is_none() && !other.starts_with("--") => {
                spec = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let spec = spec.ok_or("missing program (file path or fixture:NAME)")?;
    let program = load_program(&spec)?;

    // Any budget flag switches from the single-tier pipeline to the
    // engine's degradation ladder.
    if common.budget_given() {
        let fallback = if tier_given {
            Some(match tier {
                Tier::Heads => Rung::Heads,
                Tier::HeadPairs => Rung::HeadPairs,
                Tier::HeadTails => Rung::HeadTails,
            })
        } else {
            None
        };
        let mut opts = common.engine_options(fallback)?;
        opts.apply_transforms = transforms;
        opts.workers = common.jobs();
        let report = iwa_engine::analyze(&program, &opts).map_err(|e| e.to_string())?;
        if common.json {
            println!(
                "{}",
                serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
            );
        } else {
            print_engine_report(&spec, &report);
        }
        return Ok(engine_exit(report.verdict, report.degraded));
    }

    let opts = CertifyOptions {
        refined: RefinedOptions {
            tier,
            ..RefinedOptions::default()
        },
        stall: StallOptions {
            apply_transforms: transforms,
            ..StallOptions::default()
        },
    };
    let cert = AnalysisCtx::new()
        .workers(common.jobs())
        .certify(&program, &opts)
        .map_err(|e| e.to_string())?;

    // Downstream graph consumers need the inlined form.
    let program_inlined = iwa_tasklang::transforms::inline_procs(&program)
        .map_err(|e| e.to_string())?;
    let sg = SyncGraph::from_program(&program_inlined);
    let oracle = if want_oracle {
        let e = explore(&sg, &ExploreConfig::default()).map_err(|e| e.to_string())?;
        let witness = e
            .witnesses
            .first()
            .map(|steps| steps.iter().map(|s| s.render(&sg)).collect())
            .unwrap_or_default();
        let stuck_wave = e.anomalies.first().map(|(w, _)| w.render(&sg));
        Some(OracleReport {
            verdict: match e.verdict {
                Verdict::AnomalyFree => "anomaly-free".into(),
                Verdict::Anomalous => "anomalous".into(),
            },
            states: e.states,
            can_terminate: e.can_terminate,
            deadlock: e.has_deadlock(),
            stall: e.has_stall(),
            witness,
            stuck_wave,
        })
    } else {
        None
    };

    // Describe flagged heads in source terms.
    let analysed_sg = if cert.was_unrolled {
        SyncGraph::from_program(&iwa_tasklang::transforms::unroll_twice(&program_inlined))
    } else {
        sg
    };
    let flagged: Vec<String> = cert
        .refined
        .flagged
        .iter()
        .map(|f| {
            let d = analysed_sg.node(f.head);
            let name = d
                .label
                .clone()
                .unwrap_or_else(|| format!("node {}", f.head));
            format!(
                "{} at {} ({}{})",
                analysed_sg.symbols.task_name(d.task),
                name,
                analysed_sg.symbols.signal_name(d.rendezvous.signal),
                d.rendezvous.sign
            )
        })
        .collect();

    let report = AnalyzeReport {
        schema_version: SCHEMA_VERSION,
        program: spec.clone(),
        tasks: program.num_tasks(),
        rendezvous: program.num_rendezvous(),
        was_unrolled: cert.was_unrolled,
        naive_deadlock_free: cert.naive.deadlock_free,
        refined_deadlock_free: cert.refined.deadlock_free,
        refined_tier: format!("{tier:?}"),
        flagged_heads: flagged,
        stall_verdict: match &cert.stall.verdict {
            StallVerdict::StallFree => "stall-free".into(),
            StallVerdict::PossibleStall { signal, sends, accepts } => format!(
                "possible stall on {} ({sends} sends vs {accepts} accepts)",
                program.symbols.signal_name(*signal)
            ),
            StallVerdict::Unknown { reason } => format!("unknown ({reason})"),
        },
        warnings: cert.warnings.iter().map(|w| format!("{w:?}")).collect(),
        oracle,
    };

    if common.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        print_human(&report);
    }
    let clean = report.refined_deadlock_free
        && report.stall_verdict == "stall-free";
    Ok(if clean { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

/// The flags `analyze` and `check` accept identically — one parser, one
/// set of error messages, whichever subcommand the flag appears under.
#[derive(Default)]
struct CommonOpts {
    json: bool,
    deadline_ms: Option<u64>,
    max_steps: Option<u64>,
    start: Option<String>,
    jobs: Option<usize>,
}

impl CommonOpts {
    /// Consume `arg` (and its value from `it`) if it is a common flag.
    fn try_parse<'a>(
        &mut self,
        arg: &str,
        it: &mut impl Iterator<Item = &'a String>,
    ) -> Result<bool, String> {
        let mut value = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg {
            "--json" => self.json = true,
            "--deadline-ms" => {
                let v = value("--deadline-ms")?;
                self.deadline_ms =
                    Some(v.parse().map_err(|_| format!("bad --deadline-ms '{v}'"))?);
            }
            "--max-steps" => {
                let v = value("--max-steps")?;
                self.max_steps = Some(v.parse().map_err(|_| format!("bad --max-steps '{v}'"))?);
            }
            "--start" => {
                self.start = Some(value("--start")?.to_owned());
            }
            "-j" | "--jobs" => {
                let v = value("-j")?;
                self.jobs = Some(v.parse().map_err(|_| format!("bad -j '{v}'"))?);
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Did any *budget* flag appear? (Switches `analyze` to ladder mode;
    /// `--json`/`-j` alone do not.)
    fn budget_given(&self) -> bool {
        self.deadline_ms.is_some() || self.max_steps.is_some() || self.start.is_some()
    }

    /// The worker count, defaulting to 1 (sequential); `-j 0` means all
    /// cores and is resolved by the pool.
    fn jobs(&self) -> usize {
        self.jobs.unwrap_or(1)
    }

    /// Build engine options; `fallback_start` supplies a start rung when
    /// `--start` was not given (e.g. mapped from `--tier`). `workers`
    /// stays at its default — the caller decides which layer `-j` feeds
    /// (per-head fan-out for `analyze`, file fan-out for `check`).
    fn engine_options(&self, fallback_start: Option<Rung>) -> Result<EngineOptions, String> {
        let start = match &self.start {
            Some(s) => s.parse::<Rung>()?,
            None => fallback_start.unwrap_or(Rung::Oracle),
        };
        Ok(EngineOptions {
            start,
            deadline: self.deadline_ms.map(std::time::Duration::from_millis),
            max_steps: self.max_steps,
            ..EngineOptions::default()
        })
    }
}

fn engine_exit(verdict: EngineVerdict, degraded: bool) -> ExitCode {
    match verdict {
        EngineVerdict::Anomalous => ExitCode::FAILURE,
        EngineVerdict::Clean if !degraded => ExitCode::SUCCESS,
        _ => ExitCode::from(3),
    }
}

fn print_engine_report(spec: &str, r: &EngineReport) {
    println!("program   : {spec}");
    let verdict = match r.verdict {
        EngineVerdict::Clean => "clean",
        EngineVerdict::Anomalous => "anomalous",
        EngineVerdict::Unknown => "unknown",
    };
    if r.degraded {
        println!("verdict   : {verdict} (degraded: produced by rung '{}')", r.rung);
    } else {
        println!("verdict   : {verdict} (rung '{}')", r.rung);
    }
    println!("ladder    : {} ms total", r.elapsed_ms);
    for a in &r.attempts {
        print!(
            "    {:<10} {:<16} {:>6} ms {:>10} steps",
            a.rung.name(),
            a.outcome,
            a.elapsed_ms,
            a.steps
        );
        match &a.detail {
            Some(d) => println!("  ({d})"),
            None => println!(),
        }
    }
    for f in &r.flagged {
        println!("flagged   : {f}");
    }
}

fn check(args: &[String]) -> Result<ExitCode, String> {
    let mut target = None;
    let mut common = CommonOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if common.try_parse(a, &mut it)? {
            continue;
        }
        match a.as_str() {
            other if target.is_none() && !other.starts_with("--") => {
                target = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let target = target.ok_or("missing path (a .iwa file or a directory)")?;
    let mut opts = common.engine_options(None)?;
    if opts.deadline.is_none() {
        // Batch runs always carry a per-file deadline: one adversarial
        // input must not stall the whole corpus.
        opts.deadline = Some(std::time::Duration::from_millis(2_000));
    }

    let files =
        iwa_engine::collect_files(std::path::Path::new(&target)).map_err(|e| e.to_string())?;
    if files.is_empty() {
        return Err(format!("no .iwa files under {target}"));
    }
    let summary = iwa_engine::check_batch(
        &files,
        &CheckOptions {
            engine: opts,
            jobs: common.jobs(),
            batch_deadline: None,
        },
    );

    if common.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?
        );
    } else {
        for f in &summary.files {
            let verdict = match f.verdict {
                Some(EngineVerdict::Clean) => "clean",
                Some(EngineVerdict::Anomalous) => "anomalous",
                Some(EngineVerdict::Unknown) => "unknown",
                None => "-",
            };
            print!("{:<14} {:<9} {}", f.status, verdict, f.path);
            if let Some(rung) = f.rung {
                print!("  [{}{}]", rung.name(), if f.degraded { ", degraded" } else { "" });
            }
            if let Some(e) = &f.error {
                print!("  ({e})");
            }
            println!();
        }
        println!(
            "checked {} files in {} ms: {} clean, {} anomalous, {} unknown, \
             {} degraded, {} errors, {} panicked",
            summary.total,
            summary.elapsed_ms,
            summary.clean,
            summary.anomalous,
            summary.unknown,
            summary.degraded,
            summary.errors,
            summary.panicked,
        );
    }
    Ok(ExitCode::from(summary.exit_code()))
}

fn print_human(r: &AnalyzeReport) {
    println!("program      : {}", r.program);
    println!("size         : {} tasks, {} rendezvous", r.tasks, r.rendezvous);
    if r.was_unrolled {
        println!("transform    : loops unrolled twice (Lemma 1)");
    }
    println!(
        "naive  (§3.1): {}",
        if r.naive_deadlock_free {
            "deadlock-free"
        } else {
            "potential deadlock"
        }
    );
    println!(
        "refined(§4.2): {} [tier {}]",
        if r.refined_deadlock_free {
            "deadlock-free"
        } else {
            "potential deadlock"
        },
        r.refined_tier
    );
    for f in &r.flagged_heads {
        println!("    flagged head: {f}");
    }
    println!("stall  (§5)  : {}", r.stall_verdict);
    for w in &r.warnings {
        println!("warning      : {w}");
    }
    if let Some(o) = &r.oracle {
        println!(
            "oracle       : {} ({} states{}{}{})",
            o.verdict,
            o.states,
            if o.deadlock { ", deadlock" } else { "" },
            if o.stall { ", stall" } else { "" },
            if o.can_terminate { ", can terminate" } else { "" },
        );
        if let Some(wave) = &o.stuck_wave {
            println!("    stuck wave : {wave}");
            if o.witness.is_empty() {
                println!("    schedule   : stuck from the start");
            } else {
                for (i, s) in o.witness.iter().enumerate() {
                    println!("    schedule {:>2}: {s}", i + 1);
                }
            }
        }
    }
}

enum Transform {
    Inline,
    Unroll,
}

fn transform(args: &[String], which: Transform) -> Result<ExitCode, String> {
    let spec = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("missing program (file path or fixture:NAME)")?;
    let program = load_program(spec)?;
    let out = match which {
        Transform::Inline => {
            iwa_tasklang::transforms::inline_procs(&program).map_err(|e| e.to_string())?
        }
        Transform::Unroll => {
            let inlined = iwa_tasklang::transforms::inline_procs(&program)
                .map_err(|e| e.to_string())?;
            iwa_tasklang::transforms::unroll_twice(&inlined)
        }
    };
    print!("{}", out.to_source());
    Ok(ExitCode::SUCCESS)
}

fn graph(args: &[String]) -> Result<ExitCode, String> {
    let mut spec = None;
    let mut want_clg = false;
    for a in args {
        match a.as_str() {
            "--clg" => want_clg = true,
            other if spec.is_none() && !other.starts_with("--") => {
                spec = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let spec = spec.ok_or("missing program (file path or fixture:NAME)")?;
    let program = load_program(&spec)?;
    let program = iwa_tasklang::transforms::inline_procs(&program)
        .map_err(|e| e.to_string())?;
    let sg = SyncGraph::from_program(&program);
    if want_clg {
        let clg = Clg::build(&sg);
        print!("{}", dot::clg_dot(&sg, &clg));
    } else {
        print!("{}", dot::sync_graph_dot(&sg));
    }
    Ok(ExitCode::SUCCESS)
}
