//! `iwa` — static infinite-wait anomaly analyzer for rendezvous programs.
//!
//! ```text
//! iwa analyze <file.iwa | fixture:NAME> [--tier heads|pairs|headtails]
//!             [--oracle] [--json] [--no-transforms]
//! iwa graph   <file.iwa | fixture:NAME> [--clg]
//! iwa inline  <file.iwa | fixture:NAME>
//! iwa unroll  <file.iwa | fixture:NAME>
//! iwa fixtures
//! iwa help
//! ```

use iwa_analysis::{certify, CertifyOptions, RefinedOptions, StallOptions, StallVerdict, Tier};
use iwa_syncgraph::{dot, Clg, SyncGraph};
use iwa_tasklang::{parse, Program};
use iwa_wavesim::{explore, ExploreConfig, Verdict};
use serde::Serialize;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        Some("graph") => graph(&args[1..]),
        Some("inline") => transform(&args[1..], Transform::Inline),
        Some("unroll") => transform(&args[1..], Transform::Unroll),
        Some("fixtures") => {
            for (name, p) in iwa_workloads::figures::all_figures() {
                println!(
                    "fixture:{name:<8}  {} tasks, {} rendezvous",
                    p.num_tasks(),
                    p.num_rendezvous()
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("help") | None => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown subcommand '{other}' (try 'iwa help')")),
    }
}

const USAGE: &str = "\
iwa — static infinite-wait anomaly detection (Masticola & Ryder, ICPP 1990)

USAGE:
    iwa analyze <file.iwa | fixture:NAME> [OPTIONS]
    iwa graph   <file.iwa | fixture:NAME> [--clg]
    iwa inline  <file.iwa | fixture:NAME>   print with procedures inlined
    iwa unroll  <file.iwa | fixture:NAME>   print the Lemma-1 unrolled form
    iwa fixtures
    iwa help

ANALYZE OPTIONS:
    --tier heads|pairs|headtails   refined-algorithm tier (default: heads)
    --oracle                       also run the exhaustive wave oracle
    --json                         machine-readable output
    --no-transforms                skip the §5.1 stall transforms
";

fn load_program(spec: &str) -> Result<Program, String> {
    if let Some(name) = spec.strip_prefix("fixture:") {
        iwa_workloads::figures::all_figures()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, p)| p)
            .ok_or_else(|| format!("unknown fixture '{name}' (see 'iwa fixtures')"))
    } else {
        let src = std::fs::read_to_string(spec)
            .map_err(|e| format!("cannot read {spec}: {e}"))?;
        parse(&src).map_err(|e| e.to_string())
    }
}

#[derive(Serialize)]
struct AnalyzeReport {
    program: String,
    tasks: usize,
    rendezvous: usize,
    was_unrolled: bool,
    naive_deadlock_free: bool,
    refined_deadlock_free: bool,
    refined_tier: String,
    flagged_heads: Vec<String>,
    stall_verdict: String,
    warnings: Vec<String>,
    oracle: Option<OracleReport>,
}

#[derive(Serialize)]
struct OracleReport {
    verdict: String,
    states: usize,
    can_terminate: bool,
    deadlock: bool,
    stall: bool,
    /// Rendezvous schedule leading to the first anomaly, human-readable.
    witness: Vec<String>,
    /// The first stuck wave, rendered.
    stuck_wave: Option<String>,
}

fn analyze(args: &[String]) -> Result<ExitCode, String> {
    let mut spec = None;
    let mut tier = Tier::Heads;
    let mut want_oracle = false;
    let mut json = false;
    let mut transforms = true;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tier" => {
                tier = match it.next().map(String::as_str) {
                    Some("heads") => Tier::Heads,
                    Some("pairs") => Tier::HeadPairs,
                    Some("headtails") => Tier::HeadTails,
                    other => return Err(format!("bad --tier {other:?}")),
                };
            }
            "--oracle" => want_oracle = true,
            "--json" => json = true,
            "--no-transforms" => transforms = false,
            other if spec.is_none() && !other.starts_with("--") => {
                spec = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let spec = spec.ok_or("missing program (file path or fixture:NAME)")?;
    let program = load_program(&spec)?;

    let opts = CertifyOptions {
        refined: RefinedOptions {
            tier,
            ..RefinedOptions::default()
        },
        stall: StallOptions {
            apply_transforms: transforms,
            ..StallOptions::default()
        },
    };
    let cert = certify(&program, &opts).map_err(|e| e.to_string())?;

    // Downstream graph consumers need the inlined form.
    let program_inlined = iwa_tasklang::transforms::inline_procs(&program)
        .map_err(|e| e.to_string())?;
    let sg = SyncGraph::from_program(&program_inlined);
    let oracle = if want_oracle {
        let e = explore(&sg, &ExploreConfig::default()).map_err(|e| e.to_string())?;
        let witness = e
            .witnesses
            .first()
            .map(|steps| steps.iter().map(|s| s.render(&sg)).collect())
            .unwrap_or_default();
        let stuck_wave = e.anomalies.first().map(|(w, _)| w.render(&sg));
        Some(OracleReport {
            verdict: match e.verdict {
                Verdict::AnomalyFree => "anomaly-free".into(),
                Verdict::Anomalous => "anomalous".into(),
            },
            states: e.states,
            can_terminate: e.can_terminate,
            deadlock: e.has_deadlock(),
            stall: e.has_stall(),
            witness,
            stuck_wave,
        })
    } else {
        None
    };

    // Describe flagged heads in source terms.
    let analysed_sg = if cert.was_unrolled {
        SyncGraph::from_program(&iwa_tasklang::transforms::unroll_twice(&program_inlined))
    } else {
        sg
    };
    let flagged: Vec<String> = cert
        .refined
        .flagged
        .iter()
        .map(|f| {
            let d = analysed_sg.node(f.head);
            let name = d
                .label
                .clone()
                .unwrap_or_else(|| format!("node {}", f.head));
            format!(
                "{} at {} ({}{})",
                analysed_sg.symbols.task_name(d.task),
                name,
                analysed_sg.symbols.signal_name(d.rendezvous.signal),
                d.rendezvous.sign
            )
        })
        .collect();

    let report = AnalyzeReport {
        program: spec.clone(),
        tasks: program.num_tasks(),
        rendezvous: program.num_rendezvous(),
        was_unrolled: cert.was_unrolled,
        naive_deadlock_free: cert.naive.deadlock_free,
        refined_deadlock_free: cert.refined.deadlock_free,
        refined_tier: format!("{tier:?}"),
        flagged_heads: flagged,
        stall_verdict: match &cert.stall.verdict {
            StallVerdict::StallFree => "stall-free".into(),
            StallVerdict::PossibleStall { signal, sends, accepts } => format!(
                "possible stall on {} ({sends} sends vs {accepts} accepts)",
                program.symbols.signal_name(*signal)
            ),
            StallVerdict::Unknown { reason } => format!("unknown ({reason})"),
        },
        warnings: cert.warnings.iter().map(|w| format!("{w:?}")).collect(),
        oracle,
    };

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        print_human(&report);
    }
    let clean = report.refined_deadlock_free
        && report.stall_verdict == "stall-free";
    Ok(if clean { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn print_human(r: &AnalyzeReport) {
    println!("program      : {}", r.program);
    println!("size         : {} tasks, {} rendezvous", r.tasks, r.rendezvous);
    if r.was_unrolled {
        println!("transform    : loops unrolled twice (Lemma 1)");
    }
    println!(
        "naive  (§3.1): {}",
        if r.naive_deadlock_free {
            "deadlock-free"
        } else {
            "potential deadlock"
        }
    );
    println!(
        "refined(§4.2): {} [tier {}]",
        if r.refined_deadlock_free {
            "deadlock-free"
        } else {
            "potential deadlock"
        },
        r.refined_tier
    );
    for f in &r.flagged_heads {
        println!("    flagged head: {f}");
    }
    println!("stall  (§5)  : {}", r.stall_verdict);
    for w in &r.warnings {
        println!("warning      : {w}");
    }
    if let Some(o) = &r.oracle {
        println!(
            "oracle       : {} ({} states{}{}{})",
            o.verdict,
            o.states,
            if o.deadlock { ", deadlock" } else { "" },
            if o.stall { ", stall" } else { "" },
            if o.can_terminate { ", can terminate" } else { "" },
        );
        if let Some(wave) = &o.stuck_wave {
            println!("    stuck wave : {wave}");
            if o.witness.is_empty() {
                println!("    schedule   : stuck from the start");
            } else {
                for (i, s) in o.witness.iter().enumerate() {
                    println!("    schedule {:>2}: {s}", i + 1);
                }
            }
        }
    }
}

enum Transform {
    Inline,
    Unroll,
}

fn transform(args: &[String], which: Transform) -> Result<ExitCode, String> {
    let spec = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("missing program (file path or fixture:NAME)")?;
    let program = load_program(spec)?;
    let out = match which {
        Transform::Inline => {
            iwa_tasklang::transforms::inline_procs(&program).map_err(|e| e.to_string())?
        }
        Transform::Unroll => {
            let inlined = iwa_tasklang::transforms::inline_procs(&program)
                .map_err(|e| e.to_string())?;
            iwa_tasklang::transforms::unroll_twice(&inlined)
        }
    };
    print!("{}", out.to_source());
    Ok(ExitCode::SUCCESS)
}

fn graph(args: &[String]) -> Result<ExitCode, String> {
    let mut spec = None;
    let mut want_clg = false;
    for a in args {
        match a.as_str() {
            "--clg" => want_clg = true,
            other if spec.is_none() && !other.starts_with("--") => {
                spec = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let spec = spec.ok_or("missing program (file path or fixture:NAME)")?;
    let program = load_program(&spec)?;
    let program = iwa_tasklang::transforms::inline_procs(&program)
        .map_err(|e| e.to_string())?;
    let sg = SyncGraph::from_program(&program);
    if want_clg {
        let clg = Clg::build(&sg);
        print!("{}", dot::clg_dot(&sg, &clg));
    } else {
        print!("{}", dot::sync_graph_dot(&sg));
    }
    Ok(ExitCode::SUCCESS)
}
