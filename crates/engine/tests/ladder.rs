//! Degradation-ladder behaviour: rung selection under budgets, labelled
//! degradation, cancellation, and the audit trail.

use iwa_core::CancelToken;
use iwa_engine::{analyze, EngineOptions, EngineVerdict, Rung, LADDER};
use iwa_tasklang::parse;
use iwa_workloads::adversarial::deep_loop_nest;
use std::time::Duration;

fn clean_program() -> iwa_tasklang::Program {
    parse("task t1 { send t2.a; accept b; } task t2 { accept a; send t1.b; }").unwrap()
}

#[test]
fn every_rung_answers_unbudgeted_at_full_precision() {
    let p = clean_program();
    for rung in LADDER {
        let r = analyze(
            &p,
            &EngineOptions {
                start: rung,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(r.rung, rung, "no budget, no degradation");
        assert!(!r.degraded);
        assert_eq!(r.verdict, EngineVerdict::Clean, "rung {rung}");
        assert_eq!(r.attempts.len(), 1);
        assert_eq!(r.attempts[0].outcome, "completed");
        assert!(r.flagged.is_empty());
    }
}

#[test]
fn oracle_flags_the_crossed_deadlock() {
    let p = parse("task t1 { send t2.a; accept b; } task t2 { send t1.b; accept a; }").unwrap();
    let r = analyze(&p, &EngineOptions::default()).unwrap();
    assert_eq!(r.rung, Rung::Oracle);
    assert_eq!(r.verdict, EngineVerdict::Anomalous);
    assert!(
        r.flagged.iter().any(|f| f.contains("deadlock")),
        "flagged: {:?}",
        r.flagged
    );
}

/// Measure what each budgeted rung costs (in cooperative checkpoints) on
/// the workload the ladder tests run against.
fn rung_costs(p: &iwa_tasklang::Program) -> Vec<(Rung, u64)> {
    LADDER
        .iter()
        .map(|&rung| {
            let r = analyze(
                p,
                &EngineOptions {
                    start: rung,
                    ..EngineOptions::default()
                },
            )
            .unwrap();
            assert_eq!(r.rung, rung);
            (rung, r.attempts[0].steps)
        })
        .collect()
}

/// With a step ceiling `S = 5c + 4`, integer division hands every rung a
/// slice of exactly `c` steps as the ladder falls (a tripping rung spends
/// `slice + 1`): `(5c+4)/5 = c`, then `(4c+3)/4 = c`, `(3c+2)/3 = c`,
/// `(2c+1)/2 = c`. So the ladder lands on the first rung whose cost is
/// `<= c` — picking `c` as a rung's measured cost selects that rung
/// deterministically, given strictly decreasing costs down the ladder.
#[test]
fn step_ceilings_select_each_rung_deterministically() {
    let p = deep_loop_nest(4, 2);
    let costs = rung_costs(&p);
    for pair in costs[..4].windows(2) {
        assert!(
            pair[0].1 > pair[1].1,
            "ladder costs must strictly decrease on this workload: {costs:?}"
        );
    }
    assert_eq!(costs[4], (Rung::Naive, 0), "the floor consults no budget");

    for &(target, cost) in &costs[..4] {
        let r = analyze(
            &p,
            &EngineOptions {
                max_steps: Some(5 * cost + 4),
                ..EngineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(r.rung, target, "S=5c+4 with c={cost} lands on {target}");
        assert_eq!(r.degraded, target != Rung::Oracle);
        let pos = LADDER.iter().position(|&x| x == target).unwrap();
        assert_eq!(r.attempts.len(), pos + 1, "one attempt per abandoned rung");
        for a in &r.attempts[..pos] {
            assert_eq!(a.outcome, "budget-exceeded");
            let detail = a.detail.as_deref().unwrap();
            assert!(
                detail.contains("degraded result produced"),
                "abandoned rungs are labelled once a cheaper rung answers: {detail}"
            );
        }
        assert_eq!(r.attempts[pos].outcome, "completed");
    }

    // A ceiling of one step starves every budgeted rung; only the
    // budget-free floor can answer.
    let r = analyze(
        &p,
        &EngineOptions {
            max_steps: Some(1),
            ..EngineOptions::default()
        },
    )
    .unwrap();
    assert_eq!(r.rung, Rung::Naive);
    assert!(r.degraded);
    assert_eq!(r.attempts.len(), LADDER.len());
}

#[test]
fn a_one_millisecond_deadline_degrades_promptly_to_the_floor() {
    let p = deep_loop_nest(4, 2);
    let r = analyze(
        &p,
        &EngineOptions {
            deadline: Some(Duration::from_millis(1)),
            ..EngineOptions::default()
        },
    )
    .unwrap();
    assert!(r.degraded, "a 1 ms deadline cannot afford the oracle");
    assert!(r.elapsed_ms < 2_000, "terminates promptly, not eventually");
    // The floor still pronounces on the deadlock half.
    assert_eq!(r.rung, Rung::Naive);
    assert!(r
        .attempts
        .iter()
        .any(|a| a.detail.as_deref().is_some_and(|d| d.contains("deadline"))));
}

#[test]
fn a_pre_cancelled_token_still_gets_a_floor_answer() {
    let token = CancelToken::new();
    token.cancel();
    let r = analyze(
        &clean_program(),
        &EngineOptions {
            cancel: Some(token),
            ..EngineOptions::default()
        },
    )
    .unwrap();
    assert_eq!(r.rung, Rung::Naive);
    assert!(r.degraded);
    assert_eq!(r.verdict, EngineVerdict::Clean, "straight-line floor answer");
    assert!(r
        .attempts
        .iter()
        .all(|a| a.rung == Rung::Naive || a.detail.as_deref().unwrap().contains("cancelled")));
}

#[test]
fn starting_low_on_the_ladder_is_not_degraded() {
    let r = analyze(
        &clean_program(),
        &EngineOptions {
            start: Rung::Naive,
            ..EngineOptions::default()
        },
    )
    .unwrap();
    assert_eq!(r.rung, Rung::Naive);
    assert!(!r.degraded, "the caller asked for the floor");
}

#[test]
fn input_errors_are_not_swallowed_by_the_ladder() {
    use iwa_tasklang::ProgramBuilder;
    let mut b = ProgramBuilder::new();
    let a = b.task("a");
    let z = b.task("z");
    let sig = b.signal(z, "m");
    b.body(a, |t| {
        t.accept(sig);
    });
    b.body(z, |t| {
        t.send(sig);
    });
    assert!(analyze(&b.build(), &EngineOptions::default()).is_err());
}

#[test]
fn rung_names_round_trip() {
    for rung in LADDER {
        assert_eq!(rung.name().parse::<Rung>().unwrap(), rung);
    }
    assert!("polite-guess".parse::<Rung>().is_err());
}

#[test]
fn reports_serialize_to_json() {
    let r = analyze(&clean_program(), &EngineOptions::default()).unwrap();
    let json = serde_json::to_string(&r).unwrap();
    assert!(json.contains("\"verdict\":\"Clean\""), "got: {json}");
    assert!(json.contains("\"rung\":\"Oracle\""));
    assert!(json.contains("\"degraded\":false"));
}
