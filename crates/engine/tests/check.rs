//! Batch-driver behaviour: corpus walking, panic isolation, the error
//! taxonomy, and the exit-code contract.

use iwa_engine::{
    check_batch, collect_files, CheckOptions, EngineOptions, EngineVerdict, Rung, FAULT_INJECT_ENV,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

/// A unique scratch directory per test (unique across parallel test
/// threads and repeated runs).
fn scratch(name: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "iwa-check-{name}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const CLEAN: &str = "task t1 { send t2.a; accept b; } task t2 { accept a; send t1.b; }";
const DEADLOCK: &str = "task t1 { send t2.a; accept b; } task t2 { send t1.b; accept a; }";

#[test]
fn collect_files_walks_recursively_and_sorts() {
    let dir = scratch("collect");
    std::fs::create_dir(dir.join("sub")).unwrap();
    std::fs::write(dir.join("b.iwa"), CLEAN).unwrap();
    std::fs::write(dir.join("sub/a.iwa"), CLEAN).unwrap();
    std::fs::write(dir.join("notes.txt"), "not a program").unwrap();
    let files = collect_files(&dir).unwrap();
    let names: Vec<_> = files
        .iter()
        .map(|f| f.strip_prefix(&dir).unwrap().to_string_lossy().into_owned())
        .collect();
    assert_eq!(names, ["b.iwa", "sub/a.iwa"], "sorted, .iwa only");

    // A single file stands for itself, whatever its extension.
    let solo = collect_files(&dir.join("notes.txt")).unwrap();
    assert_eq!(solo.len(), 1);

    assert!(collect_files(&dir.join("missing")).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_mixed_corpus_yields_the_full_taxonomy_and_exit_code_1() {
    let dir = scratch("mixed");
    std::fs::write(dir.join("clean.iwa"), CLEAN).unwrap();
    std::fs::write(dir.join("deadlock.iwa"), DEADLOCK).unwrap();
    std::fs::write(dir.join("garbage.iwa"), "task task task {{{").unwrap();
    let files = collect_files(&dir).unwrap();
    let summary = check_batch(&files, &CheckOptions::default());

    assert_eq!(summary.total, 3);
    assert_eq!(summary.clean, 1);
    assert_eq!(summary.anomalous, 1);
    assert_eq!(summary.errors, 1);
    assert_eq!(summary.panicked, 0);
    assert_eq!(summary.exit_code(), 1, "anomalies dominate the exit code");

    let garbage = summary
        .files
        .iter()
        .find(|f| f.path.ends_with("garbage.iwa"))
        .unwrap();
    assert_eq!(garbage.status, "parse-error");
    assert!(garbage.verdict.is_none());
    assert!(garbage.error.as_deref().unwrap().contains("parse error"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn an_all_clean_corpus_exits_0() {
    let dir = scratch("allclean");
    std::fs::write(dir.join("one.iwa"), CLEAN).unwrap();
    std::fs::write(dir.join("two.iwa"), CLEAN).unwrap();
    let summary = check_batch(&collect_files(&dir).unwrap(), &CheckOptions::default());
    assert_eq!((summary.clean, summary.exit_code()), (2, 0));
    assert!(summary.files.iter().all(|f| f.rung == Some(Rung::Oracle)));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn deadline_degraded_files_exit_3_and_stay_labelled() {
    let dir = scratch("degraded");
    let adversarial = iwa_workloads::adversarial::deep_loop_nest(4, 2).to_source();
    std::fs::write(dir.join("slow.iwa"), adversarial).unwrap();
    let opts = EngineOptions {
        deadline: Some(Duration::from_millis(1)),
        ..EngineOptions::default()
    };
    let summary = check_batch(
        &collect_files(&dir).unwrap(),
        &CheckOptions {
            engine: opts,
            ..CheckOptions::default()
        },
    );
    assert_eq!(summary.total, 1);
    let f = &summary.files[0];
    assert_eq!(f.status, "ok", "a degraded answer is still an answer");
    assert!(f.degraded);
    assert_eq!(f.rung, Some(Rung::Naive));
    assert_eq!(summary.degraded, 1);
    // This workload is stall-prone, so even the degraded verdict flags it
    // — anomalous outranks degraded in the exit code.
    assert_eq!(f.verdict, Some(EngineVerdict::Anomalous));
    assert_eq!(summary.exit_code(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn degradation_without_anomalies_exits_3() {
    let dir = scratch("deg3");
    // Clean but branchy: the naive floor must abstain on the stall half,
    // so a starved ladder yields Unknown + degraded, never a false claim.
    std::fs::write(
        dir.join("branchy.iwa"),
        "task t1 { if { send t2.a; } else { send t2.a; } accept b; }
         task t2 { accept a; send t1.b; }",
    )
    .unwrap();
    let opts = EngineOptions {
        max_steps: Some(1),
        ..EngineOptions::default()
    };
    let summary = check_batch(
        &collect_files(&dir).unwrap(),
        &CheckOptions {
            engine: opts,
            ..CheckOptions::default()
        },
    );
    assert_eq!(summary.anomalous, 0);
    assert_eq!(summary.degraded, 1);
    assert_eq!(summary.unknown, 1);
    assert_eq!(summary.exit_code(), 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn injected_panics_are_isolated_and_the_run_continues() {
    let dir = scratch("fault");
    std::fs::write(dir.join("aaa-sound.iwa"), CLEAN).unwrap();
    // The marker is unique to this test's files, so the process-global
    // env var cannot affect concurrently running tests.
    std::fs::write(dir.join("kaboom-marker-q7.iwa"), CLEAN).unwrap();
    std::fs::write(dir.join("zzz-sound.iwa"), CLEAN).unwrap();

    std::env::set_var(FAULT_INJECT_ENV, "kaboom-marker-q7");
    let summary = check_batch(&collect_files(&dir).unwrap(), &CheckOptions::default());
    std::env::remove_var(FAULT_INJECT_ENV);

    assert_eq!(summary.total, 3);
    assert_eq!(summary.panicked, 1);
    assert_eq!(summary.clean, 2, "files after the panic still ran");
    assert_eq!(summary.exit_code(), 3);
    let bad = summary
        .files
        .iter()
        .find(|f| f.status == "panicked")
        .unwrap();
    assert!(bad.path.contains("kaboom-marker-q7"));
    assert!(bad.error.as_deref().unwrap().contains("injected fault"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unreadable_files_are_io_errors_not_crashes() {
    let dir = scratch("io");
    std::fs::write(dir.join("real.iwa"), CLEAN).unwrap();
    let mut files = collect_files(&dir).unwrap();
    files.push(dir.join("vanished.iwa")); // never created
    let summary = check_batch(&files, &CheckOptions::default());
    assert_eq!(summary.total, 2);
    assert_eq!(summary.errors, 1);
    assert_eq!(
        summary
            .files
            .iter()
            .find(|f| f.path.ends_with("vanished.iwa"))
            .unwrap()
            .status,
        "io-error"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn summaries_serialize_to_json_with_a_schema_version() {
    let dir = scratch("json");
    std::fs::write(dir.join("p.iwa"), CLEAN).unwrap();
    let summary = check_batch(&collect_files(&dir).unwrap(), &CheckOptions::default());
    let json = serde_json::to_string_pretty(&summary).unwrap();
    assert!(json.contains("\"total\": 1"), "got: {json}");
    assert!(json.contains("\"status\": \"ok\""));
    assert!(json.contains("\"verdict\": \"Clean\""));
    assert!(
        json.contains(&format!("\"schema_version\": {}", iwa_engine::SCHEMA_VERSION)),
        "got: {json}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Serialize a summary with every wall-clock and scheduler-dependent
/// field zeroed, so runs can be compared across job counts.
fn masked_json(summary: &iwa_engine::CheckSummary) -> String {
    iwa_testsupport::masked(&serde_json::to_string_pretty(summary).unwrap())
}

#[test]
fn the_summary_is_identical_for_any_job_count() {
    let dir = scratch("jobs");
    std::fs::write(dir.join("clean.iwa"), CLEAN).unwrap();
    std::fs::write(dir.join("deadlock.iwa"), DEADLOCK).unwrap();
    std::fs::write(dir.join("garbage.iwa"), "task {{{").unwrap();
    std::fs::write(
        dir.join("ring.iwa"),
        "task a { send b.x; accept z; } task b { send c.y; accept x; } task c { send a.z; accept y; }",
    )
    .unwrap();
    let files = collect_files(&dir).unwrap();
    // A step ceiling (not a wall-clock deadline) keeps even the *budgeted*
    // behaviour deterministic: whether a rung completes or trips depends
    // only on the shared step counter, never on scheduling.
    let opts = |jobs| CheckOptions {
        engine: EngineOptions {
            max_steps: Some(200_000),
            ..EngineOptions::default()
        },
        jobs,
        batch_deadline: None,
        ..CheckOptions::default()
    };
    let base = masked_json(&check_batch(&files, &opts(1)));
    for jobs in [2, 8] {
        let got = masked_json(&check_batch(&files, &opts(jobs)));
        assert_eq!(got, base, "jobs={jobs} diverged from jobs=1");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_batch_deadline_stops_all_in_flight_workers_promptly() {
    let dir = scratch("batchdl");
    for i in 0..8 {
        let adversarial = iwa_workloads::adversarial::deep_loop_nest(4, 2).to_source();
        std::fs::write(dir.join(format!("slow{i}.iwa")), adversarial).unwrap();
    }
    let started = std::time::Instant::now();
    let summary = check_batch(
        &collect_files(&dir).unwrap(),
        &CheckOptions {
            engine: EngineOptions::default(),
            jobs: 4,
            batch_deadline: Some(Duration::from_millis(50)),
            ..CheckOptions::default()
        },
    );
    // Every file still answers (degraded at worst) and the whole batch —
    // including files in flight when the deadline struck — winds down far
    // inside the time eight unbounded oracle runs would take.
    assert_eq!(summary.total, 8);
    assert!(summary.files.iter().all(|f| f.status == "ok"));
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "batch deadline propagation took {:?}",
        started.elapsed()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_cancelled_token_degrades_the_whole_batch_but_still_answers() {
    let dir = scratch("cancel");
    std::fs::write(dir.join("a.iwa"), CLEAN).unwrap();
    std::fs::write(dir.join("b.iwa"), DEADLOCK).unwrap();
    let token = iwa_core::CancelToken::new();
    token.cancel();
    let summary = check_batch(
        &collect_files(&dir).unwrap(),
        &CheckOptions {
            engine: EngineOptions {
                cancel: Some(token),
                ..EngineOptions::default()
            },
            jobs: 2,
            batch_deadline: None,
            ..CheckOptions::default()
        },
    );
    assert_eq!(summary.total, 2);
    // Every budgeted rung trips instantly; the naive floor still answers.
    assert!(summary.files.iter().all(|f| f.status == "ok" && f.degraded));
    assert!(summary.files.iter().all(|f| f.rung == Some(Rung::Naive)));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The golden JSON shapes. Adding, removing, or renaming a field in any
/// report type must update this list AND bump
/// [`iwa_engine::SCHEMA_VERSION`] — downstream tooling keys off both.
#[test]
fn the_json_schema_is_pinned() {
    fn keys(v: &serde_json::Value) -> Vec<String> {
        match v {
            serde_json::Value::Object(fields) => {
                fields.iter().map(|(k, _)| k.clone()).collect()
            }
            other => panic!("expected an object, got {other:?}"),
        }
    }

    let dir = scratch("golden");
    std::fs::write(dir.join("p.iwa"), DEADLOCK).unwrap();
    let files = collect_files(&dir).unwrap();
    let summary = check_batch(&files, &CheckOptions::default());
    let v = serde_json::to_value(&summary).unwrap();
    assert_eq!(
        keys(&v),
        [
            "schema_version", "files", "total", "clean", "anomalous", "unknown",
            "degraded", "errors", "panicked", "skipped", "elapsed_ms", "meta",
        ],
        "CheckSummary changed shape: bump SCHEMA_VERSION and update this test"
    );
    assert_eq!(
        keys(&v["meta"]),
        ["metrics", "sched"],
        "Meta changed shape: bump SCHEMA_VERSION and update this test"
    );
    assert_eq!(
        keys(&v["files"][0]),
        [
            "path", "lang", "status", "verdict", "rung", "degraded", "elapsed_ms", "error",
            "diagnostics",
        ],
        "FileOutcome changed shape: bump SCHEMA_VERSION and update this test"
    );

    let p = iwa_tasklang::parse(DEADLOCK).unwrap();
    let report = iwa_engine::analyze(&p, &EngineOptions::default()).unwrap();
    let v = serde_json::to_value(&report).unwrap();
    assert_eq!(
        keys(&v),
        [
            "schema_version", "verdict", "rung", "degraded", "attempts", "flagged",
            "elapsed_ms", "meta",
        ],
        "EngineReport changed shape: bump SCHEMA_VERSION and update this test"
    );
    assert_eq!(
        keys(&v["attempts"][0]),
        ["rung", "outcome", "detail", "elapsed_ms", "steps"],
        "RungAttempt changed shape: bump SCHEMA_VERSION and update this test"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn the_lint_stage_populates_diagnostics_only_when_enabled() {
    let dir = scratch("lint-stage");
    std::fs::write(dir.join("selfsend.iwa"), "task a { send a.m; accept m; }").unwrap();
    std::fs::write(dir.join("bad.iwa"), "task {{{").unwrap();
    let files = collect_files(&dir).unwrap();

    let off = check_batch(&files, &CheckOptions::default());
    assert!(off.files.iter().all(|f| f.diagnostics.is_empty()));

    let quick = check_batch(
        &files,
        &CheckOptions {
            lint: iwa_engine::LintStage::Quick,
            ..CheckOptions::default()
        },
    );
    let ok = quick.files.iter().find(|f| f.status == "ok").unwrap();
    assert!(ok.diagnostics.iter().any(|d| d.lint == "self-send"));
    // Failed parses never reach the lint stage.
    let bad = quick.files.iter().find(|f| f.status == "parse-error").unwrap();
    assert!(bad.diagnostics.is_empty());

    let full = check_batch(
        &files,
        &CheckOptions {
            lint: iwa_engine::LintStage::Full,
            ..CheckOptions::default()
        },
    );
    let ok = full.files.iter().find(|f| f.status == "ok").unwrap();
    assert!(
        ok.diagnostics.iter().any(|d| d.lint == "self-rendezvous-cycle"),
        "full stage runs the graph lints: {:?}",
        ok.diagnostics
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

const ABBA_LOK: &str = "thread t1 { with a { lock b; unlock b; } }
thread t2 { with b { lock a; unlock a; } }";
const ORDERED_LOK: &str = "thread t1 { with a { lock b; unlock b; } }
thread t2 { with a { lock b; unlock b; } }";

#[test]
fn a_mixed_language_corpus_dispatches_per_file() {
    let dir = scratch("lok-dispatch");
    std::fs::write(dir.join("clean.iwa"), CLEAN).unwrap();
    std::fs::write(dir.join("ordered.lok"), ORDERED_LOK).unwrap();
    std::fs::write(dir.join("abba.lok"), ABBA_LOK).unwrap();
    std::fs::write(dir.join("README.md"), "docs").unwrap();

    let sources = iwa_engine::collect_sources(&dir).unwrap();
    assert_eq!(sources.files.len(), 3, "both languages collected");
    assert_eq!(sources.skipped.len(), 1, "unknown files accounted for");

    let summary = check_batch(
        &sources.files,
        &CheckOptions {
            lint: iwa_engine::LintStage::Quick,
            skipped: sources
                .skipped
                .iter()
                .map(|p| p.display().to_string())
                .collect(),
            ..CheckOptions::default()
        },
    );
    assert_eq!(summary.clean, 2);
    assert_eq!(summary.anomalous, 1);
    assert_eq!(summary.skipped.len(), 1);
    assert!(summary.skipped[0].ends_with("README.md"));

    let abba = summary.files.iter().find(|f| f.path.ends_with("abba.lok")).unwrap();
    assert_eq!(abba.lang, "lok");
    assert_eq!(abba.verdict, Some(EngineVerdict::Anomalous));
    assert!(
        abba.diagnostics.iter().any(|d| d.lint == "lock-order-cycle"),
        "lok lints ride along: {:?}",
        abba.diagnostics
    );
    let iwa = summary.files.iter().find(|f| f.path.ends_with("clean.iwa")).unwrap();
    assert_eq!(iwa.lang, "iwa");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn analyze_model_reports_lock_cycles_with_span_anchored_witnesses() {
    let model = iwa_frontend::registry::by_lang(iwa_frontend::Lang::Lok)
        .load(ABBA_LOK)
        .unwrap();
    let report = iwa_engine::analyze_model(&model, &EngineOptions::default()).unwrap();
    assert_eq!(report.verdict, EngineVerdict::Anomalous);
    assert_eq!(report.rung, Rung::Oracle);
    assert!(!report.degraded);
    assert_eq!(report.flagged.len(), 1);
    assert!(
        report.flagged[0].contains("a → b → a") && report.flagged[0].contains("1:22"),
        "witness chain with spans: {}",
        report.flagged[0]
    );

    // Every rung of the lok ladder agrees, including the naive floor
    // (exact for this frontend — never Unknown).
    for start in [Rung::HeadTails, Rung::Heads, Rung::Naive] {
        let report = iwa_engine::analyze_model(
            &model,
            &EngineOptions {
                start,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.verdict, EngineVerdict::Anomalous, "rung {start}");
        assert!(report.flagged[0].contains("a → b → a"));
    }
    let clean = iwa_frontend::registry::by_lang(iwa_frontend::Lang::Lok)
        .load(ORDERED_LOK)
        .unwrap();
    for start in [Rung::Oracle, Rung::Heads, Rung::Naive] {
        let report = iwa_engine::analyze_model(
            &clean,
            &EngineOptions {
                start,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.verdict, EngineVerdict::Clean, "rung {start}");
    }
}
