//! The precision-degradation ladder.
//!
//! [`analyze`] runs the most precise analysis the caller asked for under a
//! slice of the overall [`Budget`]; if that rung trips its slice, the
//! engine falls to the next cheaper rung with the budget that remains,
//! all the way down to a budget-free naive floor that always answers.
//! The resulting [`EngineReport`] records which rung produced the verdict
//! and why every more precise rung was abandoned — a degraded answer is
//! always *labelled* as such, never silently substituted.
//!
//! Ladder, most precise first:
//!
//! 1. [`Rung::Oracle`] — exhaustive wave-space exploration (ground truth,
//!    worst-case exponential);
//! 2. [`Rung::HeadTails`] — refined algorithm, head–tail confirmation;
//! 3. [`Rung::HeadPairs`] — refined algorithm, head-pair confirmation;
//! 4. [`Rung::Heads`] — refined algorithm, base tier;
//! 5. [`Rung::Naive`] — §3.1 CLG cycle check plus Lemma 3 signal
//!    balance. Linear time, never budgeted, never fails.
//!
//! Slice policy: a ladder of `k` remaining rungs splits the remaining
//! wall-clock and step budget evenly, so each rung gets
//! `remaining / k`. Under integer division this keeps successive slices
//! stable as rungs trip, which makes rung selection reproducible for a
//! given step ceiling (the engine tests rely on this).

use iwa_analysis::stall::signal_balance;
use iwa_analysis::{
    naive_analysis, AnalysisCtx, CertifyOptions, RefinedOptions, StallOptions, StallVerdict, Tier,
};
use iwa_core::fault::{FaultPlan, FaultSite};
use iwa_core::obs::{Counters, Meta, Metrics, TraceSink};
use iwa_core::{Budget, CancelToken, IwaError};
use iwa_frontend::{ChanModel, LoadedModel, LokModel, ModelIr};
use iwa_syncgraph::SyncGraph;
use iwa_tasklang::transforms::{inline_procs, unroll_twice};
use iwa_tasklang::validate::check_model;
use iwa_tasklang::Program;
use iwa_wavesim::{explore_budgeted, AnomalyReport, ExploreConfig, Verdict};
use serde::Serialize;
use std::fmt;
use std::str::FromStr;
use std::time::Duration;

/// Version of the JSON report shapes this crate emits ([`EngineReport`],
/// [`CheckSummary`](crate::check::CheckSummary), and the CLI reports built
/// on them). Bump on any field addition, removal, or rename; the golden
/// schema test pins the shape for each version.
///
/// Version history: `2` added `schema_version` itself and the batch
/// summary; `3` added the shared `meta` observability block
/// ([`Meta`]) to [`EngineReport`] and
/// [`CheckSummary`](crate::check::CheckSummary); `4` added the
/// `io_retries` counter to the `meta.metrics` block; `5` added frontend
/// dispatch — `lang` on [`FileOutcome`](crate::check::FileOutcome) and
/// the `skipped` list on [`CheckSummary`](crate::check::CheckSummary).
pub const SCHEMA_VERSION: u32 = 5;

/// One rung of the degradation ladder, most precise first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Rung {
    /// Exhaustive wave-space exploration (the ground-truth oracle).
    Oracle,
    /// Refined algorithm with head–tail confirmation (§4.2 + tails).
    HeadTails,
    /// Refined algorithm with head-pair confirmation.
    HeadPairs,
    /// Refined algorithm, single-head base tier.
    Heads,
    /// Naive CLG cycle check + Lemma 3 balance: the budget-free floor.
    Naive,
}

/// The full ladder, most precise first.
pub const LADDER: [Rung; 5] = [
    Rung::Oracle,
    Rung::HeadTails,
    Rung::HeadPairs,
    Rung::Heads,
    Rung::Naive,
];

impl Rung {
    /// The ladder from this rung down to the floor (inclusive).
    #[must_use]
    pub fn ladder(self) -> &'static [Rung] {
        let idx = LADDER.iter().position(|&r| r == self).expect("in ladder");
        &LADDER[idx..]
    }

    /// The stable lowercase name (`oracle`, `headtails`, `pairs`, `heads`,
    /// `naive`) used by the CLI and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rung::Oracle => "oracle",
            Rung::HeadTails => "headtails",
            Rung::HeadPairs => "pairs",
            Rung::Heads => "heads",
            Rung::Naive => "naive",
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Rung {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "oracle" => Ok(Rung::Oracle),
            "headtails" | "head-tails" | "tails" => Ok(Rung::HeadTails),
            "pairs" | "headpairs" | "head-pairs" => Ok(Rung::HeadPairs),
            "heads" => Ok(Rung::Heads),
            "naive" => Ok(Rung::Naive),
            other => Err(format!(
                "unknown rung '{other}' (expected oracle, headtails, pairs, heads, or naive)"
            )),
        }
    }
}

/// Options for [`analyze`].
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// The most precise rung to attempt (the ladder runs from here down).
    pub start: Rung,
    /// Overall wall-clock deadline for the whole ladder.
    pub deadline: Option<Duration>,
    /// Overall cooperative-checkpoint ceiling for the whole ladder.
    pub max_steps: Option<u64>,
    /// Apply the §5.1 source transforms before the stall analysis.
    pub apply_transforms: bool,
    /// Exploration limits for the oracle rung.
    pub oracle_config: ExploreConfig,
    /// External cancellation: trips every budgeted rung at its next
    /// checkpoint (the naive floor still answers).
    pub cancel: Option<CancelToken>,
    /// Worker threads for the refined rungs' per-head fan-out. `0` means
    /// one per available core; `1` (the default) runs inline. The verdict
    /// is identical for any value — only wall-clock time changes.
    pub workers: usize,
    /// Optional phase-trace sink: when set, every rung and every analysis
    /// phase under it records a hierarchical span (exportable as Chrome
    /// `trace_event` JSON). `None` (the default) costs nothing.
    pub trace: Option<TraceSink>,
    /// Optional metrics accumulator shared with the caller. When absent
    /// the engine still meters itself into a private accumulator so the
    /// report's [`meta`](EngineReport::meta) block is always populated.
    pub metrics: Option<Metrics>,
    /// Optional fault plan: fires [`FaultSite::Certify`] at the top of
    /// every *budgeted* rung (label: the rung name) and additionally
    /// [`FaultSite::RefinedSearch`] on the refined rungs. A budget-trip
    /// or io-error fault abandons the rung and degrades down the ladder
    /// exactly like an organic failure; the naive floor never consults
    /// the plan — it must always answer.
    pub faults: Option<FaultPlan>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            start: Rung::Oracle,
            deadline: None,
            max_steps: None,
            apply_transforms: true,
            oracle_config: ExploreConfig::default(),
            cancel: None,
            workers: 1,
            trace: None,
            metrics: None,
            faults: None,
        }
    }
}

/// The three-valued outcome of a ladder run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum EngineVerdict {
    /// The producing rung certified the program free of infinite-wait
    /// anomalies.
    Clean,
    /// The producing rung flagged at least one (potential) anomaly. Every
    /// rung is safe — a real anomaly is never missed — but only the
    /// oracle's flags are exact; the cheaper the rung, the more likely a
    /// flag is a false alarm.
    Anomalous,
    /// The producing rung could certify neither half (e.g. deadlock-free
    /// but the stall analysis abstained).
    Unknown,
}

/// What happened on one rung of the ladder.
#[derive(Clone, Debug, Serialize)]
pub struct RungAttempt {
    /// Which rung ran.
    pub rung: Rung,
    /// `"completed"`, `"budget-exceeded"`, or `"failed"`.
    pub outcome: String,
    /// The error that abandoned this rung (absent when it completed).
    pub detail: Option<String>,
    /// Wall-clock milliseconds this rung consumed.
    pub elapsed_ms: u64,
    /// Cooperative checkpoints this rung consumed.
    pub steps: u64,
}

/// The engine's overall answer.
#[derive(Clone, Debug, Serialize)]
pub struct EngineReport {
    /// The JSON shape version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The verdict from the producing rung.
    pub verdict: EngineVerdict,
    /// The rung that produced the verdict.
    pub rung: Rung,
    /// `true` when the verdict came from a cheaper rung than requested —
    /// a degraded-but-labelled answer.
    pub degraded: bool,
    /// Every rung attempted, in ladder order, with per-rung cost and the
    /// reason each abandoned rung was abandoned.
    pub attempts: Vec<RungAttempt>,
    /// Human-readable descriptions of whatever the producing rung flagged
    /// (empty when `verdict` is `Clean`).
    pub flagged: Vec<String>,
    /// Total wall-clock milliseconds across the whole ladder.
    pub elapsed_ms: u64,
    /// Deterministic analysis counters plus scheduling stats for this run
    /// (only this run's deltas when the caller supplied no shared
    /// [`EngineOptions::metrics`]; cumulative totals otherwise).
    pub meta: Meta,
}

/// Run the degradation ladder on `p`.
///
/// Returns `Err` only for *input* errors (an invalid program or a call
/// cycle); budget trips never escape — they show up as abandoned
/// [`attempts`](EngineReport::attempts) while the ladder falls through to
/// the budget-free naive floor, so a verdict is always produced.
///
/// ```
/// use iwa_engine::{analyze, EngineOptions, EngineVerdict};
///
/// let p = iwa_tasklang::parse(
///     "task t1 { send t2.a; accept b; } task t2 { accept a; send t1.b; }",
/// ).unwrap();
/// let report = analyze(&p, &EngineOptions::default()).unwrap();
/// assert_eq!(report.verdict, EngineVerdict::Clean);
/// assert!(!report.degraded);
/// ```
pub fn analyze(p: &Program, opts: &EngineOptions) -> Result<EngineReport, IwaError> {
    check_model(p)?;
    let inlined;
    let p: &Program = if p.has_calls() {
        inlined = inline_procs(p)?;
        &inlined
    } else {
        p
    };
    Ok(run_ladder(opts, |rung, slice, metrics| {
        run_rung(p, rung, opts, slice, metrics)
    }))
}

/// Run the ladder on any loaded frontend model, dispatching on its IR:
/// tasklang models go through [`analyze`] unchanged; `.lok` models run
/// the [lock-order ladder](analyze_lok); `.chan` models run the
/// [channel ladder](analyze_chan). This is the entry point the batch
/// driver, the CLI, and the serve daemon share.
pub fn analyze_model(model: &LoadedModel, opts: &EngineOptions) -> Result<EngineReport, IwaError> {
    match &model.ir {
        ModelIr::Tasklang(p) => analyze(p, opts),
        ModelIr::Lok(m) => analyze_lok(m, opts),
        ModelIr::Chan(m) => analyze_chan(m, opts),
    }
}

/// Run the degradation ladder on a loaded `.lok` model.
///
/// The rungs reuse the same machinery as the tasklang ladder against the
/// lowered sync graph, specialised to the lock-order model:
///
/// * the **oracle** explores in deadlock-only mode (`ignore_stalls`) —
///   stall-only stuck waves are benign for this lowering (every task is
///   skippable, so an unpartnered acquire branch is a legal non-event);
/// * the **refined** rungs seed the per-head SCC search with the
///   hold-point nodes ([`LokModel::hold_points`]), which cover every
///   possible head of the lowered graph, and certify the deadlock half
///   only — there is no stall half to abstain on, so a deadlock-free
///   result is `Clean`, never `Unknown`;
/// * the **naive** floor's CLG cycle check is *exact* here (the lowered
///   graph is control-loop-free and its CLG cycles are precisely the
///   lock-order cycles), so even the floor never degrades to `Unknown`.
///
/// Anomalous verdicts report the canonical lock-order cycles with their
/// span-anchored acquisition chains as the flagged witnesses.
pub fn analyze_lok(m: &LokModel, opts: &EngineOptions) -> Result<EngineReport, IwaError> {
    Ok(run_ladder(opts, |rung, slice, metrics| {
        run_rung_lok(m, rung, opts, slice, metrics)
    }))
}

/// Run the degradation ladder on a loaded `.chan` model.
///
/// The deadlock half mirrors the `.lok` specialisation against the
/// port-expanded lowering (see [`iwa_frontend::chan::lower`]):
///
/// * the **oracle** explores in deadlock-only mode (`ignore_stalls`) —
///   every lowered task is skippable, so stall-only stuck waves are a
///   legal non-event, not an anomaly;
/// * the **refined** rungs seed the per-head SCC search with the
///   wait-point nodes ([`ChanModel::wait_points`]), which cover every
///   possible head of the lowered graph;
/// * the **naive** floor's CLG cycle check is *exact* here (the lowered
///   graph is control-loop-free and its CLG cycles are precisely the
///   communication-dependency cycles).
///
/// On top of the graph verdict every rung folds in the model's static
/// **livelock witnesses** — loops traversable forever without external
/// communication are control-loop properties the (loop-free) lowering
/// abstracts away, so they are detected on the AST once at load time
/// and OR-ed into each rung's answer. All rungs therefore agree, and a
/// deadlock-free, livelock-free result is `Clean`, never `Unknown`.
pub fn analyze_chan(m: &ChanModel, opts: &EngineOptions) -> Result<EngineReport, IwaError> {
    Ok(run_ladder(opts, |rung, slice, metrics| {
        run_rung_chan(m, rung, opts, slice, metrics)
    }))
}

/// The shared ladder driver: budget slicing, per-rung attempts, the
/// degraded-but-labelled fall-through, and the observability plumbing.
/// `run_rung` does the model-specific work of one rung and must be
/// infallible for [`Rung::Naive`].
fn run_ladder(
    opts: &EngineOptions,
    run_rung: impl Fn(Rung, &Budget, &Metrics) -> Result<(EngineVerdict, Vec<String>), IwaError>,
) -> EngineReport {
    let mut outer = Budget::unlimited();
    if let Some(d) = opts.deadline {
        outer = outer.and_deadline(d);
    }
    if let Some(token) = opts.cancel.clone() {
        outer = outer.and_cancel_token(token);
    }

    let metrics = opts.metrics.clone().unwrap_or_default();
    let ladder_span = opts.trace.as_ref().map(|t| t.span("engine", "ladder"));

    let rungs = opts.start.ladder();
    let mut attempts = Vec::with_capacity(rungs.len());
    let mut spent = 0u64;
    let mut produced = None;

    for (i, &rung) in rungs.iter().enumerate() {
        let rungs_left = (rungs.len() - i) as u64;
        let mut slice = outer.fork();
        if let Some(rem) = outer.remaining_time() {
            slice = slice.and_deadline(rem / rungs_left as u32);
        }
        if let Some(total) = opts.max_steps {
            let left = total.saturating_sub(spent);
            slice = slice.and_max_steps((left / rungs_left).max(1));
        }

        let rung_span = opts
            .trace
            .as_ref()
            .map(|t| t.span("engine", format!("rung {rung}")));
        let run = run_rung(rung, &slice, &metrics);
        let steps = slice.steps();
        if let Some(mut span) = rung_span {
            span.note("steps", steps);
        }
        spent += steps;
        let elapsed_ms = ms(slice.elapsed());
        match run {
            Ok((verdict, flagged)) => {
                attempts.push(RungAttempt {
                    rung,
                    outcome: "completed".to_owned(),
                    detail: None,
                    elapsed_ms,
                    steps,
                });
                produced = Some((rung, verdict, flagged));
                break;
            }
            Err(mut e) => {
                // An abandoned rung is itself an observable event — and
                // unlike the rung's internal counters (which follow
                // commit-on-completion and stay untouched), the abandonment
                // count is exactly as deterministic as rung selection: step
                // ceilings trip reproducibly, wall-clock deadlines do not.
                metrics.commit(&Counters {
                    ladder_rungs_abandoned: 1,
                    ..Counters::default()
                });
                let cheaper_rungs_remain = i + 1 < rungs.len();
                let outcome = if let IwaError::BudgetExceeded { degraded, .. } = &mut e {
                    *degraded = cheaper_rungs_remain;
                    "budget-exceeded"
                } else {
                    "failed"
                };
                attempts.push(RungAttempt {
                    rung,
                    outcome: outcome.to_owned(),
                    detail: Some(e.to_string()),
                    elapsed_ms,
                    steps,
                });
            }
        }
    }
    drop(ladder_span);

    let (rung, verdict, flagged) = produced.expect("the naive floor cannot fail");
    EngineReport {
        schema_version: SCHEMA_VERSION,
        verdict,
        rung,
        degraded: rung != opts.start,
        attempts,
        flagged,
        elapsed_ms: ms(outer.elapsed()),
        meta: metrics.meta(),
    }
}

fn ms(d: Duration) -> u64 {
    d.as_millis().try_into().unwrap_or(u64::MAX)
}

fn run_rung(
    p: &Program,
    rung: Rung,
    opts: &EngineOptions,
    budget: &Budget,
    metrics: &Metrics,
) -> Result<(EngineVerdict, Vec<String>), IwaError> {
    if rung != Rung::Naive {
        if let Some(plan) = &opts.faults {
            plan.fire(FaultSite::Certify, rung.name())?;
            if matches!(rung, Rung::HeadTails | Rung::HeadPairs | Rung::Heads) {
                plan.fire(FaultSite::RefinedSearch, rung.name())?;
            }
        }
    }
    match rung {
        Rung::Oracle => {
            // Trip *before* building the wave space when the slice is
            // already dead (e.g. `--deadline-ms 1`).
            budget.probe("oracle exploration")?;
            let sg = SyncGraph::from_program(p);
            let e = explore_budgeted(&sg, &opts.oracle_config, budget)?;
            metrics.commit(&Counters {
                sg_nodes: sg.num_nodes() as u64,
                ..Counters::default()
            });
            let verdict = match e.verdict {
                Verdict::AnomalyFree => EngineVerdict::Clean,
                Verdict::Anomalous => EngineVerdict::Anomalous,
            };
            let flagged = e
                .anomalies
                .iter()
                .map(|(_, report)| describe_anomaly(&sg, report))
                .collect();
            Ok((verdict, flagged))
        }
        Rung::HeadTails | Rung::HeadPairs | Rung::Heads => {
            let tier = match rung {
                Rung::HeadTails => Tier::HeadTails,
                Rung::HeadPairs => Tier::HeadPairs,
                _ => Tier::Heads,
            };
            let copts = CertifyOptions {
                refined: RefinedOptions {
                    tier,
                    ..RefinedOptions::default()
                },
                stall: StallOptions {
                    apply_transforms: opts.apply_transforms,
                    ..StallOptions::default()
                },
            };
            let mut builder = AnalysisCtx::builder()
                .budget(budget.clone())
                .workers(opts.workers)
                .metrics(metrics.clone());
            if let Some(t) = &opts.trace {
                builder = builder.trace(t.clone());
            }
            let cert = builder.build().certify(p, &copts)?;
            let mut flagged: Vec<String> = cert
                .refined
                .flagged
                .iter()
                .map(|h| {
                    let mut s = format!("potential deadlock: head {}", node_name(p, h.head));
                    if let Some(partner) = h.partner {
                        s.push_str(&format!(" confirmed by {}", node_name(p, partner)));
                    }
                    s.push_str(&format!(" ({} nodes in the witness component)", h.component.len()));
                    s
                })
                .collect();
            let verdict = if !cert.deadlock_free() {
                EngineVerdict::Anomalous
            } else {
                match &cert.stall.verdict {
                    StallVerdict::StallFree => EngineVerdict::Clean,
                    StallVerdict::PossibleStall {
                        signal,
                        sends,
                        accepts,
                    } => {
                        flagged.push(format!(
                            "possible stall: signal {} has {sends} sends vs {accepts} accepts \
                             on a witness path combination",
                            p.symbols.signal_name(*signal)
                        ));
                        EngineVerdict::Anomalous
                    }
                    StallVerdict::Unknown { reason } => {
                        flagged.push(format!("stall analysis abstained: {reason}"));
                        EngineVerdict::Unknown
                    }
                }
            };
            Ok((verdict, flagged))
        }
        Rung::Naive => Ok(naive_floor(p, metrics)),
    }
}

/// One rung of the lock-order ladder (see [`analyze_lok`] for the
/// per-rung specialisation). Every rung is exact for this model, so an
/// `Anomalous` verdict always reports the same canonical witnesses: the
/// lock-order cycles with their span-anchored acquisition chains.
fn run_rung_lok(
    m: &LokModel,
    rung: Rung,
    opts: &EngineOptions,
    budget: &Budget,
    metrics: &Metrics,
) -> Result<(EngineVerdict, Vec<String>), IwaError> {
    if rung != Rung::Naive {
        if let Some(plan) = &opts.faults {
            plan.fire(FaultSite::Certify, rung.name())?;
            if matches!(rung, Rung::HeadTails | Rung::HeadPairs | Rung::Heads) {
                plan.fire(FaultSite::RefinedSearch, rung.name())?;
            }
        }
    }
    let witnesses = || {
        m.cycles
            .iter()
            .map(|c| format!("lock-order cycle: {}", m.lock_graph.render_cycle(c)))
            .collect::<Vec<_>>()
    };
    match rung {
        Rung::Oracle => {
            budget.probe("oracle exploration")?;
            // Deadlock-only mode: stall-only stuck waves are benign in
            // the lock lowering (every task is skippable).
            let config = ExploreConfig {
                ignore_stalls: true,
                ..opts.oracle_config
            };
            let e = explore_budgeted(&m.sg, &config, budget)?;
            metrics.commit(&Counters {
                sg_nodes: m.sg.num_nodes() as u64,
                ..Counters::default()
            });
            match e.verdict {
                Verdict::AnomalyFree => Ok((EngineVerdict::Clean, Vec::new())),
                Verdict::Anomalous => Ok((EngineVerdict::Anomalous, witnesses())),
            }
        }
        Rung::HeadTails | Rung::HeadPairs | Rung::Heads => {
            let tier = match rung {
                Rung::HeadTails => Tier::HeadTails,
                Rung::HeadPairs => Tier::HeadPairs,
                _ => Tier::Heads,
            };
            let ropts = RefinedOptions {
                tier,
                ..RefinedOptions::default()
            };
            let mut builder = AnalysisCtx::builder()
                .budget(budget.clone())
                .workers(opts.workers)
                .metrics(metrics.clone());
            if let Some(t) = &opts.trace {
                builder = builder.trace(t.clone());
            }
            let r = builder.build().refined_seeded(&m.sg, &m.hold_points, &ropts)?;
            if r.deadlock_free {
                Ok((EngineVerdict::Clean, Vec::new()))
            } else {
                Ok((EngineVerdict::Anomalous, witnesses()))
            }
        }
        Rung::Naive => {
            // Exact for this model: the lowered graph is control-loop-free
            // and its CLG cycles are precisely the lock-order cycles, so
            // the floor never answers `Unknown` on `.lok` input.
            let naive = naive_analysis(&m.sg);
            metrics.commit(&Counters {
                sg_nodes: m.sg.num_nodes() as u64,
                clg_cycles: naive.cycle_components.len() as u64,
                ..Counters::default()
            });
            if naive.deadlock_free {
                Ok((EngineVerdict::Clean, Vec::new()))
            } else {
                Ok((EngineVerdict::Anomalous, witnesses()))
            }
        }
    }
}

/// One rung of the channel ladder (see [`analyze_chan`] for the
/// per-rung specialisation). Every rung is exact for this model, so an
/// `Anomalous` verdict always reports the same canonical witnesses:
/// the communication cycles with their span-anchored wait chains, plus
/// the static livelock witnesses with their starved-arm rationale.
fn run_rung_chan(
    m: &ChanModel,
    rung: Rung,
    opts: &EngineOptions,
    budget: &Budget,
    metrics: &Metrics,
) -> Result<(EngineVerdict, Vec<String>), IwaError> {
    if rung != Rung::Naive {
        if let Some(plan) = &opts.faults {
            plan.fire(FaultSite::Certify, rung.name())?;
            if matches!(rung, Rung::HeadTails | Rung::HeadPairs | Rung::Heads) {
                plan.fire(FaultSite::RefinedSearch, rung.name())?;
            }
        }
    }
    let witnesses = || {
        m.cycles
            .iter()
            .map(|c| format!("channel-wait cycle: {}", m.comm_graph.render_cycle(c)))
            .chain(m.livelocks.iter().map(|w| m.render_livelock(w)))
            .collect::<Vec<_>>()
    };
    // Livelock is a control-loop property the (loop-free) lowering
    // abstracts away; fold the load-time witnesses into every rung.
    let finish = |graph_deadlock_free: bool| {
        if graph_deadlock_free && m.livelocks.is_empty() {
            (EngineVerdict::Clean, Vec::new())
        } else {
            (EngineVerdict::Anomalous, witnesses())
        }
    };
    match rung {
        Rung::Oracle => {
            budget.probe("oracle exploration")?;
            // Deadlock-only mode: stall-only stuck waves are benign in
            // the channel lowering (every task is skippable).
            let config = ExploreConfig {
                ignore_stalls: true,
                ..opts.oracle_config
            };
            let e = explore_budgeted(&m.sg, &config, budget)?;
            metrics.commit(&Counters {
                sg_nodes: m.sg.num_nodes() as u64,
                ..Counters::default()
            });
            Ok(finish(e.verdict == Verdict::AnomalyFree))
        }
        Rung::HeadTails | Rung::HeadPairs | Rung::Heads => {
            let tier = match rung {
                Rung::HeadTails => Tier::HeadTails,
                Rung::HeadPairs => Tier::HeadPairs,
                _ => Tier::Heads,
            };
            let ropts = RefinedOptions {
                tier,
                ..RefinedOptions::default()
            };
            let mut builder = AnalysisCtx::builder()
                .budget(budget.clone())
                .workers(opts.workers)
                .metrics(metrics.clone());
            if let Some(t) = &opts.trace {
                builder = builder.trace(t.clone());
            }
            let r = builder.build().refined_seeded(&m.sg, &m.wait_points, &ropts)?;
            Ok(finish(r.deadlock_free))
        }
        Rung::Naive => {
            // Exact for this model: the lowered graph is control-loop-free
            // and its CLG cycles are precisely the communication cycles.
            let naive = naive_analysis(&m.sg);
            metrics.commit(&Counters {
                sg_nodes: m.sg.num_nodes() as u64,
                clg_cycles: naive.cycle_components.len() as u64,
                ..Counters::default()
            });
            Ok(finish(naive.deadlock_free))
        }
    }
}

/// The budget-free floor: §3.1 CLG cycle detection for the deadlock half
/// and the Lemma 3 whole-program balance for the stall half. Linear time,
/// consults no budget, always answers — possibly `Unknown`, but promptly.
fn naive_floor(p: &Program, metrics: &Metrics) -> (EngineVerdict, Vec<String>) {
    let analysed;
    let target: &Program = if p.is_loop_free() {
        p
    } else {
        analysed = unroll_twice(p);
        &analysed
    };
    let sg = SyncGraph::from_program(target);
    let naive = naive_analysis(&sg);
    metrics.commit(&Counters {
        sg_nodes: sg.num_nodes() as u64,
        clg_cycles: naive.cycle_components.len() as u64,
        ..Counters::default()
    });

    let mut flagged: Vec<String> = naive
        .cycle_components
        .iter()
        .map(|c| format!("potential deadlock: CLG cycle through {} sync nodes", c.len()))
        .collect();

    let straight_line = p.is_straight_line();
    let unbalanced: Vec<String> = signal_balance(p)
        .into_iter()
        .filter(|&(_, sends, accepts)| sends != accepts)
        .map(|(sig, sends, accepts)| {
            format!(
                "unbalanced signal {}: {sends} sends vs {accepts} accepts",
                p.symbols.signal_name(sig)
            )
        })
        .collect();

    let verdict = if !naive.deadlock_free {
        EngineVerdict::Anomalous
    } else if straight_line {
        // Lemma 3 is exact for straight-line programs.
        if unbalanced.is_empty() {
            EngineVerdict::Clean
        } else {
            flagged.extend(unbalanced);
            EngineVerdict::Anomalous
        }
    } else {
        // Deadlock-free by the (safe) naive check, but the floor cannot
        // decide stalls through branches or loops.
        EngineVerdict::Unknown
    };
    (verdict, flagged)
}

fn node_name(p: &Program, node: usize) -> String {
    // Rungs below the oracle report nodes of the *unrolled* graph, whose
    // indices do not map back to `p`'s own graph — rebuilding that graph
    // here just for names would repeat the certify pipeline, so fall back
    // to the bare index when it is out of range.
    let sg = SyncGraph::from_program(p);
    if node < sg.num_nodes() {
        describe_node(&sg, node)
    } else {
        format!("node {node}")
    }
}

fn describe_node(sg: &SyncGraph, node: usize) -> String {
    let d = sg.node(node);
    let label = d.label.clone().unwrap_or_else(|| {
        format!(
            "{}{}",
            sg.symbols.signal_name(d.rendezvous.signal),
            d.rendezvous.sign
        )
    });
    format!("{}:{}", sg.symbols.task_name(d.task), label)
}

fn describe_anomaly(sg: &SyncGraph, report: &AnomalyReport) -> String {
    if !report.deadlock_set.is_empty() {
        let members: Vec<String> = report
            .deadlock_set
            .iter()
            .map(|&n| describe_node(sg, n))
            .collect();
        format!("deadlock set: {}", members.join(", "))
    } else {
        let members: Vec<String> = report
            .stall_nodes
            .iter()
            .map(|&n| describe_node(sg, n))
            .collect();
        format!("stalled nodes: {}", members.join(", "))
    }
}
