//! Batch driver: run the ladder over a corpus of `.iwa` files.
//!
//! Each file is analysed under its own budget **and** its own panic
//! boundary ([`std::panic::catch_unwind`]): one malformed or adversarial
//! input — even one that crashes an analysis outright — cannot take down
//! the rest of the run. With [`CheckOptions::jobs`] > 1 the files fan out
//! across the [`pool`](iwa_core::pool) workers; outcomes keep input
//! order, so the summary is byte-identical for any job count (timing
//! fields aside). The per-file outcomes roll up into a [`CheckSummary`]
//! with an error taxonomy and a stable
//! [exit-code contract](CheckSummary::exit_code).
//!
//! For end-to-end tests of the isolation machinery the driver honours
//! structured [`FaultPlan`]s ([`CheckOptions::faults`], or the
//! `IWA_FAULT_PLAN` environment variable): rules fire at the
//! `check-file` site (label: the file path) before the file is read and
//! at the `parse` site before it is parsed, on top of the rung-level
//! sites the engine ladder fires itself. The legacy single-site hook —
//! [`FAULT_INJECT_ENV`] set to a path substring panics while checking
//! matching files — still works as an alias for
//! `check-file=panic:label=<substring>`.

use crate::ladder::{analyze_model, EngineOptions, EngineReport, EngineVerdict, Rung, SCHEMA_VERSION};
use iwa_core::fault::{FaultPlan, FaultSite};
use iwa_core::obs::{Counters, Meta};
use iwa_core::{pool, Budget, IwaError};
use iwa_frontend::{registry as frontends, Lang, ModelIr};
use iwa_lint::{
    quick_registry, registry, registry_for, run_lints, run_lints_chan, run_lints_lok, Diagnostic,
    LintConfig,
};
use serde::Serialize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Name of the legacy fault-injection environment variable: when set and
/// non-empty, any checked file whose path contains the value panics
/// mid-analysis. Kept as an alias for the one-site plan
/// `check-file=panic:label=<value>`; `IWA_FAULT_PLAN` (the full
/// [`FaultPlan`] grammar) takes precedence when both are set.
pub const FAULT_INJECT_ENV: &str = iwa_core::fault::LEGACY_FAULT_ENV;

/// Bounded retry policy for transient `io-error` outcomes in
/// [`check_batch`]. Off by default (`max_attempts` 1 = no retries), so
/// determinism goldens are unchanged unless a caller opts in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per file, including the first (minimum 1).
    pub max_attempts: u32,
    /// Base backoff: attempt `n`'s retry sleeps `backoff * n`, a
    /// deterministic linear schedule (no jitter — reproducibility beats
    /// thundering-herd avoidance in a batch checker).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::from_millis(10),
        }
    }
}

impl RetryPolicy {
    /// A policy allowing up to `max_attempts` total attempts with the
    /// default 10 ms base backoff.
    #[must_use]
    pub fn with_attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        }
    }
}

/// What happened to one file.
#[derive(Clone, Debug, Serialize)]
pub struct FileOutcome {
    /// The file's path as given.
    pub path: String,
    /// The frontend that handled the file ([`Lang::name`]: `"iwa"`,
    /// `"lok"`, or `"chan"`), resolved from [`CheckOptions::lang`] or
    /// the extension.
    pub lang: String,
    /// `"ok"`, `"parse-error"`, `"invalid-program"`, `"io-error"`, or
    /// `"panicked"`.
    pub status: String,
    /// The engine verdict (present only when `status` is `"ok"`).
    pub verdict: Option<EngineVerdict>,
    /// The rung that produced the verdict (present only when `"ok"`).
    pub rung: Option<Rung>,
    /// Whether the verdict came from a cheaper rung than requested.
    pub degraded: bool,
    /// Wall-clock milliseconds spent on this file.
    pub elapsed_ms: u64,
    /// The error or panic message (absent when `"ok"`).
    pub error: Option<String>,
    /// Lint findings for this file (always empty when the batch ran with
    /// [`LintStage::Off`], and on any non-`"ok"` status).
    pub diagnostics: Vec<Diagnostic>,
}

/// How much linting a batch run performs per file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LintStage {
    /// No lint stage; `diagnostics` stays empty.
    #[default]
    Off,
    /// The AST-level lints only ([`quick_registry`]) — cheap enough to
    /// ride along with every analysis, and the stage `iwa check` uses to
    /// surface the legacy `validate` warnings it used to drop.
    Quick,
    /// The full catalog ([`registry`]), including the sync-graph lints
    /// that re-run the refined and stall analyses.
    Full,
}

/// Options for [`check_batch`].
#[derive(Clone, Debug, Default)]
pub struct CheckOptions {
    /// Per-file engine options. A `deadline` here applies to each file
    /// separately; a `cancel` token is shared with every worker (one is
    /// created when absent, so the batch deadline can trip everyone).
    pub engine: EngineOptions,
    /// Worker threads for the file fan-out. `0` means one per available
    /// core; `1`/default runs sequentially. Inner analyses stay
    /// single-threaded (`engine.workers` is honoured as given) — the batch
    /// parallelises across files, not within them.
    pub jobs: usize,
    /// Global wall-clock deadline for the whole batch. Each file's own
    /// deadline is clamped to what remains of it, so no worker outlives
    /// the batch by more than one file's budget probe.
    pub batch_deadline: Option<Duration>,
    /// Optional per-file lint stage.
    pub lint: LintStage,
    /// Severity configuration for the lint stage.
    pub lint_config: LintConfig,
    /// Structured fault plan for chaos testing. `None` (the default)
    /// falls back to the environment (`IWA_FAULT_PLAN`, or the legacy
    /// [`FAULT_INJECT_ENV`] alias). The plan is also threaded into each
    /// file's engine options so rung-level sites fire.
    pub faults: Option<FaultPlan>,
    /// Bounded retry policy for transient `io-error` outcomes; the
    /// default (1 attempt) disables retries. Retries are counted in
    /// [`Counters::io_retries`].
    pub retry: RetryPolicy,
    /// Force every file through this frontend instead of resolving by
    /// extension (the CLI's `--lang`). `None` (the default) dispatches
    /// per file; unknown extensions fall back to tasklang.
    pub lang: Option<Lang>,
    /// Paths discovered but not analysable (unknown language), carried
    /// into [`CheckSummary::skipped`] so batch reports account for every
    /// file the walk saw. Populate from [`collect_sources`].
    pub skipped: Vec<String>,
}

/// Roll-up of a whole [`check_batch`] run.
#[derive(Clone, Debug, Serialize)]
pub struct CheckSummary {
    /// The JSON shape version
    /// ([`SCHEMA_VERSION`](crate::ladder::SCHEMA_VERSION)).
    pub schema_version: u32,
    /// Per-file outcomes, in input order (regardless of job count).
    pub files: Vec<FileOutcome>,
    /// Total files checked.
    pub total: usize,
    /// Files with a `Clean` verdict.
    pub clean: usize,
    /// Files with an `Anomalous` verdict.
    pub anomalous: usize,
    /// Files with an `Unknown` verdict.
    pub unknown: usize,
    /// Files whose verdict was degraded (any verdict, cheaper rung).
    pub degraded: usize,
    /// Files that failed to read, parse, or validate.
    pub errors: usize,
    /// Files whose analysis panicked (isolated; the run continued).
    pub panicked: usize,
    /// Files the collection walk saw but no frontend speaks (unknown
    /// language) — reported so a batch accounts for every file, never
    /// silently drops one.
    pub skipped: Vec<String>,
    /// Wall-clock milliseconds for the whole run.
    pub elapsed_ms: u64,
    /// Deterministic analysis counters plus scheduling stats, summed over
    /// every file in the batch. The counter half is byte-identical for any
    /// [`jobs`](CheckOptions::jobs) value; only `sched` varies.
    pub meta: Meta,
}

impl CheckSummary {
    /// The exit-code contract:
    ///
    /// * `1` — at least one file is `Anomalous`;
    /// * `3` — no anomalies, but something is off: a degraded or
    ///   `Unknown` verdict, an unreadable/unparsable/invalid file, or an
    ///   isolated panic;
    /// * `0` — every file clean, full precision, no errors.
    ///
    /// (`2` is reserved for CLI usage errors and never produced here.)
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        if self.anomalous > 0 {
            1
        } else if self.degraded + self.unknown + self.errors + self.panicked > 0 {
            3
        } else {
            0
        }
    }
}

/// What a directory walk found: the analysable source files plus every
/// file no registered frontend speaks.
#[derive(Clone, Debug, Default)]
pub struct CollectedSources {
    /// Files some frontend can load, sorted for reproducible output.
    pub files: Vec<PathBuf>,
    /// Files whose extension matches no registered frontend, sorted.
    /// Empty when the root was a single explicit file (an explicit file
    /// always stands for itself).
    pub skipped: Vec<PathBuf>,
}

/// Expand `root` into the source files to check: a file stands for
/// itself; a directory is walked recursively for files any registered
/// frontend speaks (`*.iwa`, `*.lok`, `*.chan`), with everything else
/// accounted
/// for in [`CollectedSources::skipped`] rather than silently dropped.
pub fn collect_sources(root: &Path) -> Result<CollectedSources, IwaError> {
    let meta = std::fs::metadata(root)
        .map_err(|e| IwaError::Io(format!("{}: {e}", root.display())))?;
    if meta.is_file() {
        return Ok(CollectedSources {
            files: vec![root.to_path_buf()],
            skipped: Vec::new(),
        });
    }
    let mut out = CollectedSources::default();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| IwaError::Io(format!("{}: {e}", dir.display())))?;
        for entry in entries {
            let path = entry
                .map_err(|e| IwaError::Io(format!("{}: {e}", dir.display())))?
                .path();
            if path.is_dir() {
                stack.push(path);
            } else if frontends::by_extension(&path).is_some() {
                out.files.push(path);
            } else {
                out.skipped.push(path);
            }
        }
    }
    out.files.sort();
    out.skipped.sort();
    Ok(out)
}

/// [`collect_sources`] without the skipped accounting — the historical
/// entry point, kept for callers that only want the analysable files.
pub fn collect_files(root: &Path) -> Result<Vec<PathBuf>, IwaError> {
    collect_sources(root).map(|c| c.files)
}

/// Deprecated sequential batch entry point.
#[cfg(feature = "legacy-api")]
#[deprecated(note = "use check_batch — CheckOptions carries the job count and batch deadline")]
#[must_use]
pub fn check_paths(paths: &[PathBuf], opts: &EngineOptions) -> CheckSummary {
    check_batch(
        paths,
        &CheckOptions {
            engine: opts.clone(),
            ..CheckOptions::default()
        },
    )
}

/// Check every file in `paths`, each behind its own panic boundary and
/// under its own copy of the engine options, fanned across
/// [`CheckOptions::jobs`] workers.
///
/// All workers share one cancel token (the caller's, when
/// `opts.engine.cancel` is set): cancelling it — or exhausting
/// [`CheckOptions::batch_deadline`] — trips every in-flight analysis at
/// its next budget probe and degrades files not yet started to their
/// naive floor, so the batch still answers promptly and completely.
#[must_use]
pub fn check_batch(paths: &[PathBuf], opts: &CheckOptions) -> CheckSummary {
    let started = Instant::now();

    // One token shared by every per-file ladder; the batch budget exists
    // only to meter the global deadline.
    let cancel = opts.engine.cancel.clone().unwrap_or_default();
    let batch_budget = opts
        .batch_deadline
        .map(|d| Budget::with_deadline(d).and_cancel_token(cancel.clone()));

    // One accumulator shared by every per-file ladder. Counter commits are
    // saturating adds of non-negative deltas, so the summed totals are
    // independent of worker interleaving — identical for any job count.
    let metrics = opts.engine.metrics.clone().unwrap_or_default();

    // One fault plan shared by every file, so trigger windows (skip/times)
    // count one global hit sequence. A malformed env spec is ignored here —
    // the CLI validates and reports it before ever reaching the batch.
    let faults = opts
        .faults
        .clone()
        .or_else(|| opts.engine.faults.clone())
        .or_else(|| FaultPlan::from_env().ok().flatten());

    let (files, stats) = pool::try_map_stats(opts.jobs, paths.len(), |i| {
        let mut eopts = opts.engine.clone();
        eopts.cancel = Some(cancel.clone());
        eopts.metrics = Some(metrics.clone());
        eopts.faults = faults.clone();
        // Clamp the per-file deadline to what remains of the batch; an
        // already-exhausted batch leaves each remaining file a zero
        // deadline, degrading it straight to the naive floor.
        if let Some(rem) = batch_budget.as_ref().and_then(Budget::remaining_time) {
            eopts.deadline = Some(eopts.deadline.map_or(rem, |d| d.min(rem)));
        }
        Ok::<_, IwaError>(check_one(
            &paths[i],
            &eopts,
            opts.lang,
            opts.lint,
            &opts.lint_config,
            &opts.retry,
        ))
    });
    let files: Vec<FileOutcome> = files.expect("per-file closure is infallible");
    metrics.record_steals(stats.steals);

    let count = |f: &dyn Fn(&FileOutcome) -> bool| files.iter().filter(|o| f(o)).count();
    CheckSummary {
        schema_version: SCHEMA_VERSION,
        total: files.len(),
        clean: count(&|o| o.verdict == Some(EngineVerdict::Clean)),
        anomalous: count(&|o| o.verdict == Some(EngineVerdict::Anomalous)),
        unknown: count(&|o| o.verdict == Some(EngineVerdict::Unknown)),
        degraded: count(&|o| o.degraded),
        errors: count(&|o| matches!(o.status.as_str(), "parse-error" | "invalid-program" | "io-error")),
        panicked: count(&|o| o.status == "panicked"),
        skipped: opts.skipped.clone(),
        elapsed_ms: started.elapsed().as_millis().try_into().unwrap_or(u64::MAX),
        meta: metrics.meta(),
        files,
    }
}

enum Checked {
    Report(EngineReport, Vec<Diagnostic>),
    Parse(IwaError),
    Invalid(IwaError),
    Io(String),
}

/// Map an injected fault error onto the outcome taxonomy: io-errors are
/// the (retryable) `"io-error"` status, anything else lands in
/// `"invalid-program"` like an organic analysis error.
fn checked_fault(e: IwaError) -> Checked {
    match e {
        IwaError::Io(msg) => Checked::Io(msg),
        other => Checked::Invalid(other),
    }
}

fn check_attempt(
    path: &Path,
    display: &str,
    opts: &EngineOptions,
    forced: Option<Lang>,
    lint: LintStage,
    lint_config: &LintConfig,
) -> Checked {
    if let Some(plan) = &opts.faults {
        if let Err(e) = plan.fire(FaultSite::CheckFile, display) {
            return checked_fault(e);
        }
    }
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => return Checked::Io(e.to_string()),
    };
    if let Some(plan) = &opts.faults {
        if let Err(e) = plan.fire(FaultSite::Parse, display) {
            return checked_fault(e);
        }
    }
    // `load` covers both parsing and model validation; keep the two
    // apart in the outcome taxonomy.
    let model = match frontends::resolve(path, forced).load(&src) {
        Ok(m) => m,
        Err(e @ IwaError::Parse { .. }) => return Checked::Parse(e),
        Err(e) => return Checked::Invalid(e),
    };
    let report = match analyze_model(&model, opts) {
        Ok(report) => report,
        Err(e) => return Checked::Invalid(e),
    };
    // The model analysed cleanly, so the lint context builds; a
    // budget-tripped graph lint degrades to silence, not an error.
    let diagnostics = match (&model.ir, lint) {
        (_, LintStage::Off) => Vec::new(),
        (ModelIr::Tasklang(program), LintStage::Quick) => {
            let ctx = iwa_analysis::AnalysisCtx::builder().build();
            run_lints(&ctx, program, lint_config, &quick_registry()).unwrap_or_default()
        }
        (ModelIr::Tasklang(program), LintStage::Full) => {
            let ctx = iwa_analysis::AnalysisCtx::builder()
                .workers(opts.workers)
                .build();
            run_lints(&ctx, program, lint_config, &registry()).unwrap_or_default()
        }
        // Every `.lok` lint runs on the precomputed lock graph, so the
        // quick/full split collapses for this frontend.
        (ModelIr::Lok(m), LintStage::Quick | LintStage::Full) => {
            run_lints_lok(m, lint_config, &registry_for(Lang::Lok))
        }
        // Likewise for `.chan`: every lint reads the precomputed model.
        (ModelIr::Chan(m), LintStage::Quick | LintStage::Full) => {
            run_lints_chan(m, lint_config, &registry_for(Lang::Chan))
        }
    };
    Checked::Report(report, diagnostics)
}

fn check_one(
    path: &Path,
    opts: &EngineOptions,
    forced: Option<Lang>,
    lint: LintStage,
    lint_config: &LintConfig,
    retry: &RetryPolicy,
) -> FileOutcome {
    let started = Instant::now();
    let display = path.display().to_string();
    let lang = frontends::resolve(path, forced).lang().name().to_owned();
    let max_attempts = u64::from(retry.max_attempts.max(1));

    let mut retries = 0u64;
    let run = loop {
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            check_attempt(path, &display, opts, forced, lint, lint_config)
        }));
        // Only transient io-errors are retryable; panics, parse errors,
        // and analysis errors are not going to change on a second look.
        match attempt {
            Ok(Checked::Io(msg)) if retries + 1 < max_attempts => {
                retries += 1;
                std::thread::sleep(retry.backoff * u32::try_from(retries).unwrap_or(u32::MAX));
                drop(msg);
            }
            other => break other,
        }
    };
    if retries > 0 {
        if let Some(metrics) = &opts.metrics {
            metrics.commit(&Counters {
                io_retries: retries,
                ..Counters::default()
            });
        }
    }

    let elapsed_ms = started.elapsed().as_millis().try_into().unwrap_or(u64::MAX);
    let (status, verdict, rung, degraded, error, diagnostics) = match run {
        Ok(Checked::Report(r, d)) => ("ok", Some(r.verdict), Some(r.rung), r.degraded, None, d),
        Ok(Checked::Parse(e)) => ("parse-error", None, None, false, Some(e.to_string()), vec![]),
        Ok(Checked::Invalid(e)) => {
            ("invalid-program", None, None, false, Some(e.to_string()), vec![])
        }
        Ok(Checked::Io(msg)) => ("io-error", None, None, false, Some(msg), vec![]),
        Err(payload) => (
            "panicked",
            None,
            None,
            false,
            // `as_ref` to downcast the *contents*, not the box itself.
            Some(panic_message(payload.as_ref())),
            vec![],
        ),
    };
    FileOutcome {
        path: display,
        lang,
        status: status.to_owned(),
        verdict,
        rung,
        degraded,
        elapsed_ms,
        error,
        diagnostics,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}
