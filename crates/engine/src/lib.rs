//! Resilient analysis driver: budgets, a precision-degradation ladder,
//! and panic-isolated batch checking.
//!
//! The paper's algorithms are polynomial, but "polynomial" is not
//! "prompt": an adversarial program can make the refined tiers grind and
//! the exhaustive oracle explode. This crate turns every analysis entry
//! point into something a build pipeline can rely on:
//!
//! * [`analyze`] runs a [ladder](ladder) of analyses from most precise to
//!   cheapest under one [`Budget`](iwa_core::Budget) — a rung that
//!   exceeds its slice is abandoned (with its partial-progress counters
//!   on record) and the next cheaper rung gets the remaining budget,
//!   down to a budget-free naive floor that always answers;
//! * [`check_batch`] runs a whole corpus across a worker pool, each file
//!   behind its own deadline and
//!   [`catch_unwind`](std::panic::catch_unwind) boundary, and rolls the
//!   outcomes into a [`CheckSummary`] with a stable
//!   [exit-code contract](CheckSummary::exit_code).
//!
//! Every degraded answer is labelled: the [`EngineReport`] names the
//! producing rung, flags `degraded`, and keeps a per-rung audit trail of
//! why each more precise rung was abandoned.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod ladder;

pub use check::{
    check_batch, collect_files, collect_sources, CheckOptions, CheckSummary, CollectedSources,
    FileOutcome, LintStage, RetryPolicy, FAULT_INJECT_ENV,
};
pub use ladder::{
    analyze, analyze_lok, analyze_model, EngineOptions, EngineReport, EngineVerdict, Rung,
    RungAttempt, LADDER, SCHEMA_VERSION,
};

// The deprecated sequential batch entry point stays re-exported so old
// code keeps compiling (with a deprecation warning at the use site),
// gated behind the `legacy-api` feature (off by default).
#[cfg(feature = "legacy-api")]
#[allow(deprecated)]
pub use check::check_paths;
