//! Span-carrying diagnostics for `.iwa` programs.
//!
//! The paper's algorithms certify whole programs; a production analyzer
//! must also *explain* findings at source granularity. This crate holds
//! the pieces the CLI and engine share to do that:
//!
//! * [`Diagnostic`] — one finding: a lint name, a [`Severity`], a message,
//!   and a [`Span`](iwa_core::Span) pointing into the original source
//!   (spans survive the Lemma-1 transforms, so graph-level lints computed
//!   on the unrolled program still underline the statement the user
//!   wrote);
//! * [`LintPass`] / [`registry`] — the lint catalog, from migrated
//!   `validate` census warnings up to sync-graph lints that reuse
//!   [`AnalysisCtx`](iwa_analysis::AnalysisCtx) (budgets, cancellation and
//!   worker counts all respected);
//! * [`render`] — rustc-style text output with a source-excerpt caret
//!   line, also used to render parse errors;
//! * [`sarif`] — SARIF 2.1.0 emission for editor and CI integration.
//!
//! Determinism: for a fixed program and configuration the diagnostic list
//! is byte-stable regardless of worker count — passes run in registry
//! order, findings are sorted positionally and deduplicated, and the
//! underlying analyses are deterministic for any `-j`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use iwa_analysis::AnalysisCtx;
use iwa_core::{IwaError, Span};
use iwa_frontend::{ChanModel, LokModel};
use iwa_tasklang::Program;
use serde::Serialize;
use std::fmt;

pub mod context;
pub mod passes;
pub mod render;
pub mod sarif;

pub use context::LintContext;
pub use iwa_frontend::Lang;

/// How seriously a finding is taken.
///
/// `Allow` findings are dropped before they reach any output; `Deny`
/// findings flip the `iwa lint` exit code. `--deny-warnings` promotes
/// every `Warn` to `Deny` after per-lint overrides are applied.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize)]
pub enum Severity {
    /// Suppressed: computed but not reported.
    Allow,
    /// Reported, does not affect the exit code.
    Warn,
    /// Reported and fails the run.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Allow => "allow",
            Severity::Warn => "warning",
            Severity::Deny => "error",
        })
    }
}

/// Static description of one lint: its registry identity and defaults.
#[derive(Clone, Copy, Debug)]
pub struct Lint {
    /// Kebab-case registry name (`-W`/`-A`/`-D` key and SARIF rule id).
    pub name: &'static str,
    /// Severity when no override applies.
    pub default_severity: Severity,
    /// One-line description (shown in SARIF rule metadata and
    /// `iwa lint --explain`).
    pub description: &'static str,
    /// The frontends this lint speaks — the applicability matrix behind
    /// [`registry_for`] and `iwa lint --explain`.
    pub applies_to: &'static [Lang],
}

/// One finding.
#[derive(Clone, PartialEq, Eq, Debug, Serialize)]
pub struct Diagnostic {
    /// Name of the lint that produced this ([`Lint::name`]).
    pub lint: String,
    /// Effective severity after configuration.
    pub severity: Severity,
    /// Human-readable, source-level message.
    pub message: String,
    /// Where in the original source the finding points
    /// ([`Span::DUMMY`] when the construct has no source location).
    pub span: Span,
}

/// Per-run lint configuration: severity overrides in flag order, plus the
/// `--deny-warnings` promotion.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    /// `(lint name, severity)` overrides, applied in order (last wins).
    pub levels: Vec<(String, Severity)>,
    /// Promote every `Warn` finding to `Deny` (after overrides).
    pub deny_warnings: bool,
}

impl LintConfig {
    /// The effective severity of `lint` under this configuration.
    #[must_use]
    pub fn severity_of(&self, lint: &Lint) -> Severity {
        let mut sev = lint.default_severity;
        for (name, level) in &self.levels {
            if name == lint.name {
                sev = *level;
            }
        }
        if self.deny_warnings && sev == Severity::Warn {
            Severity::Deny
        } else {
            sev
        }
    }

    /// Does `name` refer to a registered lint? (Catches `-W typo`.)
    #[must_use]
    pub fn is_known(name: &str) -> bool {
        registry().iter().any(|p| p.lint().name == name)
    }
}

/// One lint: a descriptor plus the code that looks for it.
///
/// Passes append [`Diagnostic`]s with [`Severity::Warn`]; the drivers
/// ([`run_lints`], [`run_lints_lok`], [`run_lints_chan`]) rewrite
/// severities from the configuration, drop `Allow`s, sort, and
/// deduplicate. A pass therefore never needs to see the configuration.
///
/// A pass implements the entry point(s) for the language(s) in its
/// descriptor's [`Lint::applies_to`]; the other entry points default to
/// no-ops, so mixed registries are safe to run against any model.
pub trait LintPass {
    /// The static descriptor.
    fn lint(&self) -> &'static Lint;
    /// Scan a tasklang model and append findings to `out`.
    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let _ = (ctx, out);
    }
    /// Scan a `.lok` model and append findings to `out`.
    fn run_lok(&self, model: &LokModel, out: &mut Vec<Diagnostic>) {
        let _ = (model, out);
    }
    /// Scan a `.chan` model and append findings to `out`.
    fn run_chan(&self, model: &ChanModel, out: &mut Vec<Diagnostic>) {
        let _ = (model, out);
    }
}

/// The full lint catalog across every frontend, in documentation order.
#[must_use]
pub fn registry() -> Vec<Box<dyn LintPass>> {
    let mut v = quick_registry();
    v.extend(graph_registry());
    v.extend(locks_registry());
    v.extend(channels_registry());
    v
}

/// The catalog filtered to the lints that speak `lang`.
#[must_use]
pub fn registry_for(lang: Lang) -> Vec<Box<dyn LintPass>> {
    let mut v = registry();
    v.retain(|p| p.lint().applies_to.contains(&lang));
    v
}

/// The AST-level lints: cheap passes over the parsed program (the three
/// migrated `validate` warnings plus the structural lints). `analyze` and
/// `check` surface these without paying for the sync-graph analyses.
#[must_use]
pub fn quick_registry() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(passes::structural::SelfSend),
        Box::new(passes::structural::UnmatchedSignal),
        Box::new(passes::structural::EntryNeverCalled),
        Box::new(passes::structural::SilentTask),
        Box::new(passes::structural::NeverStartedTask),
        Box::new(passes::structural::UnreachableStatement),
    ]
}

/// The sync-graph/CLG-derived lints: these run the paper's analyses via
/// the shared [`AnalysisCtx`], so budgets and cancellation apply.
#[must_use]
pub fn graph_registry() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(passes::graph::SelfRendezvousCycle),
        Box::new(passes::graph::AlwaysStallingWait),
        Box::new(passes::graph::DeadlockHead),
    ]
}

/// The `.lok` lock-order lints. All are AST/lock-graph level (the lock
/// graph and its cycles are precomputed on the loaded model), so there is
/// no quick/deep split for this frontend.
#[must_use]
pub fn locks_registry() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(passes::locks::LockOrderCycle),
        Box::new(passes::locks::DoubleLock),
        Box::new(passes::locks::UnbalancedUnlock),
        Box::new(passes::locks::LockHeldAtExit),
    ]
}

/// The `.chan` channel/select lints. All run on the precomputed pieces
/// of the loaded model (communication graph, cycles, livelocks, effect
/// sets), so — like the `.lok` family — there is no quick/deep split.
#[must_use]
pub fn channels_registry() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(passes::channels::ChannelCycle),
        Box::new(passes::channels::Livelock),
        Box::new(passes::channels::SendOnClosed),
        Box::new(passes::channels::SelectArmStarved),
        Box::new(passes::channels::NeverReceived),
        Box::new(passes::channels::UnboundedGrowth),
    ]
}

/// Run `passes` over one program and post-process the findings:
/// configure severities, drop `Allow`s, sort positionally
/// (span, then lint name, then message), and deduplicate — transform
/// copies share their original's span, so lints firing on both unrolled
/// copies of a loop body collapse to one finding here.
///
/// Fails only when the program violates the model assumptions
/// ([`iwa_tasklang::validate::check_model`]) so badly that the derived
/// graphs cannot be built.
pub fn run_lints(
    ctx: &AnalysisCtx,
    program: &Program,
    config: &LintConfig,
    passes: &[Box<dyn LintPass>],
) -> Result<Vec<Diagnostic>, IwaError> {
    let lcx = LintContext::new(program, ctx)?;
    let mut out = Vec::new();
    for pass in passes {
        let sev = config.severity_of(pass.lint());
        if sev == Severity::Allow {
            continue;
        }
        let start = out.len();
        pass.run(&lcx, &mut out);
        for d in &mut out[start..] {
            d.severity = sev;
        }
    }
    postprocess(&mut out);
    Ok(out)
}

/// Run `passes` over one loaded `.lok` model, with the same severity
/// configuration and post-processing as [`run_lints`]. Infallible: the
/// lock graph and its cycles are already on the model.
#[must_use]
pub fn run_lints_lok(
    model: &LokModel,
    config: &LintConfig,
    passes: &[Box<dyn LintPass>],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for pass in passes {
        let sev = config.severity_of(pass.lint());
        if sev == Severity::Allow {
            continue;
        }
        let start = out.len();
        pass.run_lok(model, &mut out);
        for d in &mut out[start..] {
            d.severity = sev;
        }
    }
    postprocess(&mut out);
    out
}

/// Run `passes` over one loaded `.chan` model, with the same severity
/// configuration and post-processing as [`run_lints`]. Infallible: the
/// communication graph, its cycles, and the livelock witnesses are
/// already on the model.
#[must_use]
pub fn run_lints_chan(
    model: &ChanModel,
    config: &LintConfig,
    passes: &[Box<dyn LintPass>],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for pass in passes {
        let sev = config.severity_of(pass.lint());
        if sev == Severity::Allow {
            continue;
        }
        let start = out.len();
        pass.run_chan(model, &mut out);
        for d in &mut out[start..] {
            d.severity = sev;
        }
    }
    postprocess(&mut out);
    out
}

/// Shared finding post-processing: sort positionally (span, then lint
/// name, then message) and deduplicate.
fn postprocess(out: &mut Vec<Diagnostic>) {
    out.sort_by(|a, b| {
        (a.span, a.lint.as_str(), a.message.as_str())
            .cmp(&(b.span, b.lint.as_str(), b.message.as_str()))
    });
    out.dedup();
}

/// Does any finding fail the run under the exit-code contract?
#[must_use]
pub fn has_denials(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Deny)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_kebab_case() {
        let passes = registry();
        let mut names: Vec<_> = passes.iter().map(|p| p.lint().name).collect();
        names.sort_unstable();
        let mut deduped = names.clone();
        deduped.dedup();
        assert_eq!(names, deduped, "duplicate lint name");
        for n in names {
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "not kebab-case: {n}"
            );
        }
    }

    #[test]
    fn severity_resolution_last_override_wins_then_deny_warnings() {
        let lint = Lint {
            name: "self-send",
            default_severity: Severity::Warn,
            description: "",
            applies_to: &[Lang::Tasklang],
        };
        let mut cfg = LintConfig::default();
        assert_eq!(cfg.severity_of(&lint), Severity::Warn);
        cfg.levels.push(("self-send".into(), Severity::Allow));
        cfg.levels.push(("self-send".into(), Severity::Deny));
        assert_eq!(cfg.severity_of(&lint), Severity::Deny);
        cfg.levels.push(("self-send".into(), Severity::Warn));
        cfg.deny_warnings = true;
        assert_eq!(cfg.severity_of(&lint), Severity::Deny);
    }

    #[test]
    fn unknown_lint_names_are_detected() {
        assert!(LintConfig::is_known("self-send"));
        assert!(!LintConfig::is_known("no-such-lint"));
    }
}
