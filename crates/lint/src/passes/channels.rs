//! The `.chan` channel/select lints.
//!
//! All six run on the precomputed pieces of a loaded
//! [`ChanModel`] — the communication dependency graph with its cycles,
//! the livelock witnesses, and the channel-effect sets — so, like the
//! `.lok` family, they cost nothing beyond the load. The three `Deny`
//! lints cover the anomalies the engine also flags (`channel-cycle`,
//! `livelock`) plus the `send-on-closed` runtime fault; the three `Warn`
//! lints surface channel hygiene: starved select arms, channels sent on
//! but never received, and unbounded buffers that only ever grow.

use crate::{Diagnostic, Lang, Lint, LintPass, Severity};
use iwa_frontend::chan::{Capacity, ChanIssue, Dir};
use iwa_frontend::ChanModel;

fn finding(lint: &Lint, span: iwa_core::Span, message: String) -> Diagnostic {
    Diagnostic {
        lint: lint.name.to_owned(),
        severity: Severity::Warn,
        message,
        span,
    }
}

/// `channel-cycle`: the communication dependency graph has a cycle —
/// processes can each block at a channel port of the ring while
/// withholding the op the next port's waiters need, the channel analogue
/// of a lock-order cycle. The message carries the full span-anchored
/// wait chain.
pub struct ChannelCycle;

static CHANNEL_CYCLE: Lint = Lint {
    name: "channel-cycle",
    default_severity: Severity::Deny,
    description: "channel ports form a circular wait; processes can deadlock starving each other",
    applies_to: &[Lang::Chan],
};

impl LintPass for ChannelCycle {
    fn lint(&self) -> &'static Lint {
        &CHANNEL_CYCLE
    }

    fn run_chan(&self, model: &ChanModel, out: &mut Vec<Diagnostic>) {
        for c in &model.cycles {
            out.push(finding(
                self.lint(),
                c.chain[0].blocked_span,
                format!("channel-wait cycle: {}", model.comm_graph.render_cycle(c)),
            ));
        }
    }
}

/// `livelock`: a loop can be traversed forever without externally
/// visible communication — a spin-on-default select with starved arms,
/// or a busy-wait receiving from a closed channel. The message carries
/// the witness with its ranked starved-arm rationale.
pub struct Livelock;

static LIVELOCK: Lint = Lint {
    name: "livelock",
    default_severity: Severity::Deny,
    description: "a loop can spin forever without communicating; starved arms never fire",
    applies_to: &[Lang::Chan],
};

impl LintPass for Livelock {
    fn lint(&self) -> &'static Lint {
        &LIVELOCK
    }

    fn run_chan(&self, model: &ChanModel, out: &mut Vec<Diagnostic>) {
        for w in &model.livelocks {
            out.push(finding(self.lint(), w.site_span, model.render_livelock(w)));
        }
    }
}

/// `send-on-closed`: a `send` on a path where the channel is closed on
/// every prefix — a runtime fault (the op can never complete usefully),
/// distinct from a wait anomaly.
pub struct SendOnClosed;

static SEND_ON_CLOSED: Lint = Lint {
    name: "send-on-closed",
    default_severity: Severity::Deny,
    description: "a process sends on a channel after closing it; the send faults at runtime",
    applies_to: &[Lang::Chan],
};

impl LintPass for SendOnClosed {
    fn lint(&self) -> &'static Lint {
        &SEND_ON_CLOSED
    }

    fn run_chan(&self, model: &ChanModel, out: &mut Vec<Diagnostic>) {
        for i in &model.effects.issues {
            if let ChanIssue::SendOnClosed { span, .. } = i {
                out.push(finding(
                    self.lint(),
                    *span,
                    model.comm_graph.render_issue(i),
                ));
            }
        }
    }
}

/// `select-arm-starved`: a select arm whose op has no counterpart site
/// in any other process — the arm can never fire, so the select's
/// fairness degenerates to whatever the remaining arms (or `default`)
/// offer.
pub struct SelectArmStarved;

static SELECT_ARM_STARVED: Lint = Lint {
    name: "select-arm-starved",
    default_severity: Severity::Warn,
    description: "a select arm has no counterpart in any other process and can never fire",
    applies_to: &[Lang::Chan],
};

impl LintPass for SelectArmStarved {
    fn lint(&self) -> &'static Lint {
        &SELECT_ARM_STARVED
    }

    fn run_chan(&self, model: &ChanModel, out: &mut Vec<Diagnostic>) {
        for sel in &model.effects.selects {
            for arm in &sel.arms {
                if model.effects.counterparts(&sel.proc_name, arm.chan, arm.dir) > 0 {
                    continue;
                }
                let needs = match arm.dir {
                    Dir::Send => "no other proc ever receives",
                    Dir::Recv => "no other proc ever sends or closes",
                };
                out.push(finding(
                    self.lint(),
                    arm.span,
                    format!(
                        "select arm {} {} in proc {} can never fire ({} on it)",
                        arm.dir.verb(),
                        model.comm_graph.chan_name(arm.chan),
                        sel.proc_name,
                        needs
                    ),
                ));
            }
        }
    }
}

/// `never-received`: a channel with send sites but no recv site anywhere
/// — every send eventually blocks (rendezvous/bounded) or accumulates
/// forever (unbounded). A non-circular infinite wait the cycle verdict
/// cannot see.
pub struct NeverReceived;

static NEVER_RECEIVED: Lint = Lint {
    name: "never-received",
    default_severity: Severity::Warn,
    description: "a channel is sent on but never received anywhere; sends back up or block forever",
    applies_to: &[Lang::Chan],
};

impl LintPass for NeverReceived {
    fn lint(&self) -> &'static Lint {
        &NEVER_RECEIVED
    }

    fn run_chan(&self, model: &ChanModel, out: &mut Vec<Diagnostic>) {
        for (c, sends) in model.effects.send_sites.iter().enumerate() {
            let Some(first) = sends.first() else { continue };
            if model.effects.recv_sites[c].is_empty() {
                out.push(finding(
                    self.lint(),
                    first.span,
                    format!(
                        "channel {} is sent on ({} site{}) but never received",
                        model.comm_graph.chan_name(c),
                        sends.len(),
                        if sends.len() == 1 { "" } else { "s" }
                    ),
                ));
            }
        }
    }
}

/// `unbounded-growth`: an unbounded channel sent on from inside a loop
/// while no loop ever drains it — the buffer can grow without bound.
/// (Bounded channels exert backpressure instead, so only `[*]` buffers
/// qualify.)
pub struct UnboundedGrowth;

static UNBOUNDED_GROWTH: Lint = Lint {
    name: "unbounded-growth",
    default_severity: Severity::Warn,
    description: "an unbounded channel is filled in a loop but drained by none; its buffer can grow without bound",
    applies_to: &[Lang::Chan],
};

impl LintPass for UnboundedGrowth {
    fn lint(&self) -> &'static Lint {
        &UNBOUNDED_GROWTH
    }

    fn run_chan(&self, model: &ChanModel, out: &mut Vec<Diagnostic>) {
        for (c, sends) in model.effects.send_sites.iter().enumerate() {
            if model.comm_graph.capacities[c] != Capacity::Unbounded {
                continue;
            }
            let Some(looped) = sends.iter().find(|s| s.in_loop) else {
                continue;
            };
            if model.effects.recv_sites[c].iter().any(|s| s.in_loop) {
                continue;
            }
            out.push(finding(
                self.lint(),
                looped.span,
                format!(
                    "unbounded channel {} is sent on in a loop but no loop receives from it",
                    model.comm_graph.chan_name(c)
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{registry_for, run_lints_chan, Lang, LintConfig, Severity};
    use iwa_frontend::{registry, ModelIr};

    fn lint(src: &str) -> Vec<crate::Diagnostic> {
        let model = registry::by_lang(Lang::Chan).load(src).unwrap();
        let ModelIr::Chan(chan) = &model.ir else {
            panic!("not a chan model")
        };
        run_lints_chan(chan, &LintConfig::default(), &registry_for(Lang::Chan))
    }

    #[test]
    fn crossed_pair_yields_a_denying_cycle_with_witness_chain() {
        let diags = lint(
            "chan a; chan b;
             proc p1 { send a; send b; }
             proc p2 { recv b; recv a; }",
        );
        let cycle: Vec<_> = diags.iter().filter(|d| d.lint == "channel-cycle").collect();
        assert_eq!(cycle.len(), 1);
        assert_eq!(cycle[0].severity, Severity::Deny);
        assert!(cycle[0].message.contains("a! → b? → a!"), "{}", cycle[0].message);
        assert!(cycle[0].message.contains("blocks at send a"), "{}", cycle[0].message);
        assert!(cycle[0].span.is_real());
    }

    #[test]
    fn spin_on_default_yields_a_denying_livelock() {
        let diags = lint(
            "chan c;
             proc poller { loop { select { recv c { } default { } } } }",
        );
        let ll: Vec<_> = diags.iter().filter(|d| d.lint == "livelock").collect();
        assert_eq!(ll.len(), 1);
        assert_eq!(ll[0].severity, Severity::Deny);
        assert!(ll[0].message.contains("spins on select default"), "{}", ll[0].message);
        // The starved arm is also its own warning.
        assert!(diags.iter().any(|d| d.lint == "select-arm-starved"));
    }

    #[test]
    fn closed_hygiene_lints_fire_together() {
        let diags = lint("chan c[*]; proc p { close c; send c; }");
        assert!(diags
            .iter()
            .any(|d| d.lint == "send-on-closed" && d.severity == Severity::Deny));
        assert!(diags
            .iter()
            .any(|d| d.lint == "never-received" && d.severity == Severity::Warn));
    }

    #[test]
    fn unbounded_growth_needs_a_looped_send_and_no_looped_recv() {
        let diags = lint(
            "chan log[*];
             proc p { loop { send log; } }
             proc q { recv log; }",
        );
        assert!(diags.iter().any(|d| d.lint == "unbounded-growth"));
        // A draining loop silences it.
        let drained = lint(
            "chan log[*];
             proc p { loop { send log; } }
             proc q { loop { recv log; } }",
        );
        assert!(!drained.iter().any(|d| d.lint == "unbounded-growth"));
    }

    #[test]
    fn starved_arm_names_the_missing_counterpart() {
        let diags = lint(
            "chan a; chan b;
             proc chooser { select { recv a { } recv b { } } }
             proc feeder { send a; }",
        );
        let starved: Vec<_> = diags
            .iter()
            .filter(|d| d.lint == "select-arm-starved")
            .collect();
        assert_eq!(starved.len(), 1);
        assert!(starved[0].message.contains("recv b"), "{}", starved[0].message);
        assert!(
            starved[0].message.contains("ever sends or closes"),
            "{}",
            starved[0].message
        );
    }

    #[test]
    fn clean_pipeline_has_no_findings() {
        assert!(lint(
            "chan a; chan b;
             proc p1 { send a; send b; }
             proc p2 { recv a; recv b; }"
        )
        .is_empty());
    }

    #[test]
    fn severity_overrides_apply_to_chan_lints() {
        let model = registry::by_lang(Lang::Chan)
            .load("chan c[*]; proc p { close c; send c; }")
            .unwrap();
        let ModelIr::Chan(chan) = &model.ir else { panic!() };
        let cfg = LintConfig {
            levels: vec![("send-on-closed".into(), Severity::Allow)],
            deny_warnings: false,
        };
        let diags = run_lints_chan(chan, &cfg, &registry_for(Lang::Chan));
        assert!(!diags.iter().any(|d| d.lint == "send-on-closed"));
    }
}
