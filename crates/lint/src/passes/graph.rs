//! Sync-graph and analysis-derived lints.
//!
//! These passes run the paper's algorithms through the shared
//! [`AnalysisCtx`](iwa_analysis::AnalysisCtx), so the caller's budget,
//! cancellation token, and worker count all apply. When a budgeted
//! analysis cannot finish, the pass reports nothing rather than guessing
//! — lint output stays deterministic for whatever the analysis certified.

use crate::{Diagnostic, Lang, Lint, LintContext, LintPass, Severity};
use iwa_analysis::{RefinedOptions, StallOptions, StallVerdict};
use iwa_core::Sign;

/// `self-rendezvous-cycle`: an accept whose every matching send lies in
/// its own task. The task would have to stand at the send and the accept
/// simultaneously — a one-task cycle in the sync graph that can never
/// complete. Computed on the *inlined* graph, so sends hidden inside
/// called procedures are attributed to their calling task (which the
/// AST-level `self-send` lint cannot see).
pub struct SelfRendezvousCycle;

static SELF_RENDEZVOUS_CYCLE: Lint = Lint {
    name: "self-rendezvous-cycle",
    default_severity: Severity::Warn,
    description: "an entry is only ever called from its own task; the rendezvous cannot complete",
    applies_to: &[Lang::Tasklang],
};

impl LintPass for SelfRendezvousCycle {
    fn lint(&self) -> &'static Lint {
        &SELF_RENDEZVOUS_CYCLE
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let sg = &ctx.sg;
        for n in sg.rendezvous_nodes() {
            let d = sg.node(n);
            if d.rendezvous.sign != Sign::Minus {
                continue;
            }
            let partners = sg.sync_neighbors(n);
            if !partners.is_empty()
                && partners
                    .iter()
                    .all(|&m| sg.node(m as usize).task == d.task)
            {
                out.push(Diagnostic {
                    lint: self.lint().name.to_owned(),
                    severity: Severity::Warn,
                    message: format!(
                        "entry '{}' is only ever called from its own task '{}'; \
                         this rendezvous can never complete",
                        sg.symbols.signal_name(d.rendezvous.signal),
                        sg.symbols.task_name(d.task)
                    ),
                    span: d.span,
                });
            }
        }
    }
}

/// `always-stalling-wait`: the §5 stall analysis (Lemma 3 signal balance,
/// Lemma 4 path combinations) found a path combination on which some
/// signal's send and accept counts cannot match — a wait on that signal
/// outlives every possible partner.
pub struct AlwaysStallingWait;

static ALWAYS_STALLING_WAIT: Lint = Lint {
    name: "always-stalling-wait",
    default_severity: Severity::Warn,
    description: "the stall analysis found a path combination with unbalanced waits on a signal",
    applies_to: &[Lang::Tasklang],
};

impl LintPass for AlwaysStallingWait {
    fn lint(&self) -> &'static Lint {
        &ALWAYS_STALLING_WAIT
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let report = ctx.ctx.stall(&ctx.inlined, &StallOptions::default());
        if let StallVerdict::PossibleStall {
            signal,
            sends,
            accepts,
        } = report.verdict
        {
            let certainty = if report.straight_line {
                "every execution stalls"
            } else {
                "a path combination stalls"
            };
            out.push(Diagnostic {
                lint: self.lint().name.to_owned(),
                severity: Severity::Warn,
                message: format!(
                    "{certainty} on signal '{}': {sends} send(s) against {accepts} accept(s)",
                    ctx.program.symbols.signal_name(signal)
                ),
                span: ctx.first_site_of(signal).unwrap_or_default(),
            });
        }
    }
}

/// `deadlock-head`: the refined analysis (§4.2) certified that a
/// rendezvous heads a nonremovable cycle in the unrolled sync graph — a
/// potential deadlock the polynomial analysis could not discharge.
/// Spans on the unrolled graph map back to the original source (both
/// unrolled copies share their original's span), so the two copies of a
/// flagged loop-body head collapse into one diagnostic.
pub struct DeadlockHead;

static DEADLOCK_HEAD: Lint = Lint {
    name: "deadlock-head",
    default_severity: Severity::Deny,
    description: "the refined analysis flagged this rendezvous as the head of a deadlock cycle",
    applies_to: &[Lang::Tasklang],
};

impl LintPass for DeadlockHead {
    fn lint(&self) -> &'static Lint {
        &DEADLOCK_HEAD
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Ok(result) = ctx.ctx.refined(&ctx.unrolled_sg, &RefinedOptions::default()) else {
            // Budget exhausted or cancelled: certify nothing, flag nothing.
            return;
        };
        for f in &result.flagged {
            let d = ctx.unrolled_sg.node(f.head);
            out.push(Diagnostic {
                lint: self.lint().name.to_owned(),
                severity: Severity::Deny,
                // The component size depends on which unrolled copy was
                // flagged, so it stays out of the message — both copies
                // must dedup to one finding per source site.
                message: format!(
                    "potential deadlock: task '{}' waiting at '{}{}' heads a nonremovable \
                     cycle of rendezvous",
                    ctx.unrolled_sg.symbols.task_name(d.task),
                    ctx.unrolled_sg.symbols.signal_name(d.rendezvous.signal),
                    d.rendezvous.sign,
                ),
                span: d.span,
            });
        }
    }
}
