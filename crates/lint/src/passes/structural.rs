//! AST-level lints.

use crate::{Diagnostic, Lang, Lint, LintContext, LintPass, Severity};
use iwa_core::{Sign, TaskId};
use iwa_tasklang::cfg::{self, TaskCfg};
use iwa_tasklang::Stmt;

fn warn(lint: &Lint, span: iwa_core::Span, message: String) -> Diagnostic {
    Diagnostic {
        lint: lint.name.to_owned(),
        severity: Severity::Warn,
        message,
        span,
    }
}

/// `self-send`: a task sends one of its own entries. Legal to write, but
/// the rendezvous can never complete — the task cannot wait at its own
/// send and reach the matching accept simultaneously.
pub struct SelfSend;

static SELF_SEND: Lint = Lint {
    name: "self-send",
    default_severity: Severity::Warn,
    description: "a task sends a signal to itself; the rendezvous can never complete",
    applies_to: &[Lang::Tasklang],
};

impl LintPass for SelfSend {
    fn lint(&self) -> &'static Lint {
        &SELF_SEND
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let p = ctx.program;
        for task in &p.tasks {
            for s in &task.body {
                s.visit_rendezvous(&mut |st| {
                    if let Stmt::Send { signal, .. } = st {
                        let receiver = p.symbols.signal_info(*signal).map(|i| i.receiver);
                        if receiver == Some(task.id) {
                            out.push(warn(
                                self.lint(),
                                st.span(),
                                format!(
                                    "task '{}' sends signal '{}' to itself",
                                    p.symbols.task_name(task.id),
                                    p.symbols.signal_name(*signal)
                                ),
                            ));
                        }
                    }
                });
            }
        }
    }
}

/// `unmatched-signal`: a signal with send points but no accept points —
/// every execution of a send stalls forever.
pub struct UnmatchedSignal;

static UNMATCHED_SIGNAL: Lint = Lint {
    name: "unmatched-signal",
    default_severity: Severity::Warn,
    description: "a signal is sent but has no accept point anywhere",
    applies_to: &[Lang::Tasklang],
};

impl LintPass for UnmatchedSignal {
    fn lint(&self) -> &'static Lint {
        &UNMATCHED_SIGNAL
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let p = ctx.program;
        let mut scan = |body: &[Stmt]| {
            for s in body {
                s.visit_rendezvous(&mut |st| {
                    if let Stmt::Send { signal, .. } = st {
                        let (sends, accepts) = ctx.counts(*signal);
                        if sends > 0 && accepts == 0 {
                            out.push(warn(
                                self.lint(),
                                st.span(),
                                format!(
                                    "signal '{}' is sent but never accepted",
                                    p.symbols.signal_name(*signal)
                                ),
                            ));
                        }
                    }
                });
            }
        };
        for t in &p.tasks {
            scan(&t.body);
        }
        for pr in &p.procs {
            scan(&pr.body);
        }
    }
}

/// `entry-never-called`: the accepting mirror of `unmatched-signal` — an
/// entry with accept points but no send anywhere, so every accept waits
/// forever. Together the two lints cover the legacy `UnmatchedSignal`
/// census warning, split by which side of the rendezvous is lonely.
pub struct EntryNeverCalled;

static ENTRY_NEVER_CALLED: Lint = Lint {
    name: "entry-never-called",
    default_severity: Severity::Warn,
    description: "an entry is accepted but no task ever calls it",
    applies_to: &[Lang::Tasklang],
};

impl LintPass for EntryNeverCalled {
    fn lint(&self) -> &'static Lint {
        &ENTRY_NEVER_CALLED
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let p = ctx.program;
        for t in &p.tasks {
            for s in &t.body {
                s.visit_rendezvous(&mut |st| {
                    if let Stmt::Accept { signal, .. } = st {
                        let (sends, accepts) = ctx.counts(*signal);
                        if accepts > 0 && sends == 0 {
                            out.push(warn(
                                self.lint(),
                                st.span(),
                                format!(
                                    "entry '{}' is accepted but never called",
                                    p.symbols.signal_name(*signal)
                                ),
                            ));
                        }
                    }
                });
            }
        }
    }
}

/// `silent-task`: a task whose (inlined) body contains no rendezvous at
/// all — it never synchronises and is invisible to every analysis.
pub struct SilentTask;

static SILENT_TASK: Lint = Lint {
    name: "silent-task",
    default_severity: Severity::Warn,
    description: "a task contains no rendezvous and is invisible to the analyses",
    applies_to: &[Lang::Tasklang],
};

impl LintPass for SilentTask {
    fn lint(&self) -> &'static Lint {
        &SILENT_TASK
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for task in &ctx.inlined.tasks {
            let mut saw = false;
            for s in &task.body {
                s.visit_rendezvous(&mut |_| saw = true);
            }
            if !saw {
                // Spans live on the *original* declaration; inlining
                // preserves task ids and spans, so either view works.
                out.push(warn(
                    self.lint(),
                    task.span,
                    format!(
                        "task '{}' contains no rendezvous",
                        ctx.program.symbols.task_name(task.id)
                    ),
                ));
            }
        }
    }
}

/// `never-started-task`: every control path into the task's body begins
/// by accepting an entry that no task ever calls, and the task has no
/// rendezvous-free path either — it blocks at its first wait, forever.
pub struct NeverStartedTask;

static NEVER_STARTED_TASK: Lint = Lint {
    name: "never-started-task",
    default_severity: Severity::Warn,
    description: "every path into the task starts by waiting on an entry that is never called",
    applies_to: &[Lang::Tasklang],
};

impl LintPass for NeverStartedTask {
    fn lint(&self) -> &'static Lint {
        &NEVER_STARTED_TASK
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for task in &ctx.inlined.tasks {
            let tcfg = TaskCfg::build(task);
            let first = tcfg.first_nodes();
            // A rendezvous-free path (ENTRY → EXIT) means the task can
            // run to completion without waiting; an empty body shows up
            // the same way.
            if first.is_empty() || first.contains(&cfg::EXIT) {
                continue;
            }
            let all_dead_accepts = first.iter().all(|&n| {
                let rv = tcfg.rv(n);
                rv.rendezvous.sign == Sign::Minus && ctx.counts(rv.rendezvous.signal).0 == 0
            });
            if all_dead_accepts {
                out.push(warn(
                    self.lint(),
                    task.span,
                    format!(
                        "task '{}' can never start: every path into its body waits on \
                         an entry that is never called",
                        ctx.program.symbols.task_name(task.id)
                    ),
                ));
            }
        }
    }
}

/// `unreachable-statement`: a statement that follows a statement which
/// can never complete (a self-send, or a rendezvous on a signal whose
/// complementary side does not exist anywhere in the program).
///
/// The divergence inference is structural and conservative: a `repeat`
/// diverges when its body does (the body runs at least once); an `if`
/// diverges only when *both* branches do; a `while` never diverges (its
/// body may be skipped).
pub struct UnreachableStatement;

static UNREACHABLE_STATEMENT: Lint = Lint {
    name: "unreachable-statement",
    default_severity: Severity::Warn,
    description: "the statement follows a wait that can never complete",
    applies_to: &[Lang::Tasklang],
};

impl UnreachableStatement {
    /// Can `s` never complete? `task` is `None` inside procedure bodies,
    /// where the executing task is unknown until inlining.
    fn diverges(&self, ctx: &LintContext<'_>, task: Option<TaskId>, s: &Stmt) -> bool {
        match s {
            Stmt::Send { signal, .. } => {
                let self_send = task.is_some()
                    && ctx.program.symbols.signal_info(*signal).map(|i| i.receiver) == task;
                self_send || ctx.counts(*signal).1 == 0
            }
            Stmt::Accept { signal, .. } => ctx.counts(*signal).0 == 0,
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                !then_branch.is_empty()
                    && !else_branch.is_empty()
                    && self.block_diverges(ctx, task, then_branch)
                    && self.block_diverges(ctx, task, else_branch)
            }
            Stmt::Repeat { body, .. } => self.block_diverges(ctx, task, body),
            Stmt::While { .. } | Stmt::Call { .. } => false,
        }
    }

    fn block_diverges(&self, ctx: &LintContext<'_>, task: Option<TaskId>, block: &[Stmt]) -> bool {
        block.iter().any(|s| self.diverges(ctx, task, s))
    }

    fn scan_block(
        &self,
        ctx: &LintContext<'_>,
        task: Option<TaskId>,
        block: &[Stmt],
        out: &mut Vec<Diagnostic>,
    ) {
        let mut blocked_by: Option<&Stmt> = None;
        for s in block {
            if let Some(cause) = blocked_by {
                out.push(warn(
                    self.lint(),
                    s.span(),
                    format!(
                        "unreachable statement: the {} at {} can never complete",
                        stmt_kind(cause),
                        cause.span()
                    ),
                ));
                // One finding per dead region, on its first statement.
                break;
            }
            match s {
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    self.scan_block(ctx, task, then_branch, out);
                    self.scan_block(ctx, task, else_branch, out);
                }
                Stmt::While { body, .. } | Stmt::Repeat { body, .. } => {
                    self.scan_block(ctx, task, body, out);
                }
                _ => {}
            }
            if self.diverges(ctx, task, s) {
                blocked_by = Some(s);
            }
        }
    }
}

fn stmt_kind(s: &Stmt) -> &'static str {
    match s {
        Stmt::Send { .. } => "send",
        Stmt::Accept { .. } => "accept",
        Stmt::If { .. } => "conditional",
        Stmt::While { .. } => "while loop",
        Stmt::Repeat { .. } => "repeat loop",
        Stmt::Call { .. } => "call",
    }
}

impl LintPass for UnreachableStatement {
    fn lint(&self) -> &'static Lint {
        &UNREACHABLE_STATEMENT
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for task in &ctx.program.tasks {
            self.scan_block(ctx, Some(task.id), &task.body, out);
        }
        for pr in &ctx.program.procs {
            self.scan_block(ctx, None, &pr.body, out);
        }
    }
}
