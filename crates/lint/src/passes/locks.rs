//! The `.lok` lock-order lints.
//!
//! All four run on the precomputed lock-order graph of a loaded
//! [`LokModel`] — no further analysis, so they are as cheap as the
//! structural tasklang lints. The two `Deny` lints split the cycle
//! taxonomy: `lock-order-cycle` reports multi-mutex cycles with their
//! span-anchored acquisition chain, `double-lock` reports self-cycles
//! (re-acquiring a held, non-reentrant mutex). The two `Warn` lints
//! surface the walk's hygiene issues.

use crate::{Diagnostic, Lang, Lint, LintPass, Severity};
use iwa_frontend::lok::LockIssue;
use iwa_frontend::LokModel;

fn finding(lint: &Lint, span: iwa_core::Span, message: String) -> Diagnostic {
    Diagnostic {
        lint: lint.name.to_owned(),
        severity: Severity::Warn,
        message,
        span,
    }
}

/// `lock-order-cycle`: the lock-order graph has a multi-mutex cycle —
/// threads can each hold one mutex of the ring while blocking on the
/// next, the classic circular wait. The message carries the full
/// witness acquisition chain with the span of every acquire site.
pub struct LockOrderCycle;

static LOCK_ORDER_CYCLE: Lint = Lint {
    name: "lock-order-cycle",
    default_severity: Severity::Deny,
    description: "mutexes are acquired in a cyclic order; threads can deadlock in a circular wait",
    applies_to: &[Lang::Lok],
};

impl LintPass for LockOrderCycle {
    fn lint(&self) -> &'static Lint {
        &LOCK_ORDER_CYCLE
    }

    fn run_lok(&self, model: &LokModel, out: &mut Vec<Diagnostic>) {
        for c in &model.cycles {
            if c.mutexes.len() < 2 {
                continue; // self-cycles are `double-lock`'s
            }
            out.push(finding(
                self.lint(),
                c.chain[0].acquire_span,
                format!(
                    "lock-order cycle: {}",
                    model.lock_graph.render_cycle(c)
                ),
            ));
        }
    }
}

/// `double-lock`: a thread may acquire a mutex it already holds. The
/// mutexes of this model are non-reentrant, so the second acquire waits
/// on the thread itself — a self-deadlock, and a length-one cycle in the
/// lock-order graph.
pub struct DoubleLock;

static DOUBLE_LOCK: Lint = Lint {
    name: "double-lock",
    default_severity: Severity::Deny,
    description: "a thread may re-acquire a mutex it already holds; the second acquire self-deadlocks",
    applies_to: &[Lang::Lok],
};

impl LintPass for DoubleLock {
    fn lint(&self) -> &'static Lint {
        &DOUBLE_LOCK
    }

    fn run_lok(&self, model: &LokModel, out: &mut Vec<Diagnostic>) {
        for c in &model.cycles {
            let [m] = c.mutexes[..] else { continue };
            let e = &c.chain[0];
            out.push(finding(
                self.lint(),
                e.acquire_span,
                format!(
                    "thread {} locks {} ({}) while already holding it (locked at {})",
                    e.thread,
                    model.lock_graph.mutex_name(m),
                    e.acquire_span,
                    e.held_span
                ),
            ));
        }
    }
}

/// `unbalanced-unlock`: an `unlock` of a mutex that is held on no path
/// to it — a no-op at best, a sign of confused pairing at worst.
pub struct UnbalancedUnlock;

static UNBALANCED_UNLOCK: Lint = Lint {
    name: "unbalanced-unlock",
    default_severity: Severity::Warn,
    description: "a mutex is unlocked on a path where it is not held",
    applies_to: &[Lang::Lok],
};

impl LintPass for UnbalancedUnlock {
    fn lint(&self) -> &'static Lint {
        &UNBALANCED_UNLOCK
    }

    fn run_lok(&self, model: &LokModel, out: &mut Vec<Diagnostic>) {
        for i in &model.lock_graph.issues {
            if let LockIssue::UnlockNotHeld { span, .. } = i {
                out.push(finding(
                    self.lint(),
                    *span,
                    model.lock_graph.render_issue(i),
                ));
            }
        }
    }
}

/// `lock-held-at-exit`: a thread's body can end with a mutex still held
/// — nothing in this model ever releases it afterwards, so every later
/// acquire of that mutex waits forever.
pub struct LockHeldAtExit;

static LOCK_HELD_AT_EXIT: Lint = Lint {
    name: "lock-held-at-exit",
    default_severity: Severity::Warn,
    description: "a thread may exit still holding a mutex; later acquirers wait forever",
    applies_to: &[Lang::Lok],
};

impl LintPass for LockHeldAtExit {
    fn lint(&self) -> &'static Lint {
        &LOCK_HELD_AT_EXIT
    }

    fn run_lok(&self, model: &LokModel, out: &mut Vec<Diagnostic>) {
        for i in &model.lock_graph.issues {
            if let LockIssue::ExitHolding { span, .. } = i {
                out.push(finding(
                    self.lint(),
                    *span,
                    model.lock_graph.render_issue(i),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{registry_for, run_lints_lok, Lang, LintConfig, Severity};
    use iwa_frontend::{registry, ModelIr};

    fn lint(src: &str) -> Vec<crate::Diagnostic> {
        let model = registry::by_lang(Lang::Lok).load(src).unwrap();
        let ModelIr::Lok(lok) = &model.ir else {
            panic!("not a lok model")
        };
        run_lints_lok(lok, &LintConfig::default(), &registry_for(Lang::Lok))
    }

    #[test]
    fn abba_yields_a_denying_cycle_with_witness_chain() {
        let diags = lint(
            "thread t1 { with a { lock b; unlock b; } }
             thread t2 { with b { lock a; unlock a; } }",
        );
        let cycle: Vec<_> = diags.iter().filter(|d| d.lint == "lock-order-cycle").collect();
        assert_eq!(cycle.len(), 1);
        assert_eq!(cycle[0].severity, Severity::Deny);
        assert!(cycle[0].message.contains("a → b → a"), "{}", cycle[0].message);
        assert!(cycle[0].message.contains("1:22"), "{}", cycle[0].message);
        assert!(cycle[0].span.is_real());
    }

    #[test]
    fn double_lock_is_its_own_lint_not_a_cycle() {
        let diags = lint("thread t { lock a; lock a; unlock a; }");
        assert!(diags.iter().any(|d| d.lint == "double-lock"));
        assert!(!diags.iter().any(|d| d.lint == "lock-order-cycle"));
    }

    #[test]
    fn hygiene_lints_warn() {
        let diags = lint("thread t { unlock a; lock b; }");
        assert!(diags
            .iter()
            .any(|d| d.lint == "unbalanced-unlock" && d.severity == Severity::Warn));
        assert!(diags
            .iter()
            .any(|d| d.lint == "lock-held-at-exit" && d.severity == Severity::Warn));
    }

    #[test]
    fn clean_program_has_no_findings() {
        assert!(lint(
            "thread t1 { with a { with b { } } }
             thread t2 { with a { with b { } } }"
        )
        .is_empty());
    }

    #[test]
    fn applicability_matrix_partitions_the_catalog() {
        let lok = registry_for(Lang::Lok);
        let chan = registry_for(Lang::Chan);
        let iwa = registry_for(Lang::Tasklang);
        assert_eq!(lok.len(), 4);
        assert_eq!(chan.len(), 6);
        assert_eq!(iwa.len() + lok.len() + chan.len(), crate::registry().len());
        for p in lok.iter().chain(&chan) {
            assert!(!p.lint().applies_to.contains(&Lang::Tasklang));
        }
    }

    #[test]
    fn severity_overrides_apply_to_lok_lints() {
        let model = registry::by_lang(Lang::Lok)
            .load("thread t { lock a; lock a; unlock a; }")
            .unwrap();
        let ModelIr::Lok(lok) = &model.ir else { panic!() };
        let cfg = LintConfig {
            levels: vec![("double-lock".into(), Severity::Allow)],
            deny_warnings: false,
        };
        let diags = run_lints_lok(lok, &cfg, &registry_for(Lang::Lok));
        assert!(!diags.iter().any(|d| d.lint == "double-lock"));
    }
}
