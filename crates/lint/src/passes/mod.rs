//! The lint catalog.
//!
//! Four families:
//!
//! * [`structural`] — AST-level passes over the parsed (and, where noted,
//!   inlined) program: the migrated `validate` census plus reachability
//!   and liveness checks that need no sync-graph analysis;
//! * [`graph`] — passes that run the paper's analyses (stall balance,
//!   refined deadlock certification) through the shared
//!   [`AnalysisCtx`](iwa_analysis::AnalysisCtx) and map the graph-level
//!   findings back to source spans;
//! * [`locks`] — the `.lok` lock-order family: acquisition-order cycles
//!   (with witness chains), double acquires, and lock hygiene;
//! * [`channels`] — the `.chan` family: communication-wait cycles,
//!   livelocks, closed-channel faults, and channel hygiene.

pub mod channels;
pub mod graph;
pub mod locks;
pub mod structural;
