//! Shared state lint passes read from.

use iwa_analysis::AnalysisCtx;
use iwa_core::{IwaError, SignalId, Span};
use iwa_syncgraph::SyncGraph;
use iwa_tasklang::transforms::{inline_procs, unroll_twice};
use iwa_tasklang::validate::check_model;
use iwa_tasklang::{Program, Stmt};

/// Everything a [`LintPass`](crate::LintPass) may consult, derived once
/// per linted program.
///
/// Three views of the program coexist:
///
/// * [`program`](Self::program) — the original, as parsed (spans point at
///   exactly what the user wrote; procedures still present);
/// * [`inlined`](Self::inlined) — procedures expanded; statement spans
///   copied from the procedure bodies, so proc-hidden findings still map
///   to source;
/// * [`unrolled`](Self::unrolled) / [`unrolled_sg`](Self::unrolled_sg) —
///   the Lemma-1 form the deadlock analyses run on. Both unrolled copies
///   of a loop body *share* the original statement's span, which is what
///   lets graph-level findings collapse back to one source location.
pub struct LintContext<'a> {
    /// The original program.
    pub program: &'a Program,
    /// The analysis context (budget, cancellation, workers) the
    /// graph-level passes run under.
    pub ctx: &'a AnalysisCtx,
    /// The program with procedures inlined (identical to `program` when
    /// it has no calls).
    pub inlined: Program,
    /// Sync graph of the inlined program.
    pub sg: SyncGraph,
    /// The inlined program unrolled twice (Lemma 1).
    pub unrolled: Program,
    /// Sync graph of the unrolled program — the one the refined deadlock
    /// analysis certifies.
    pub unrolled_sg: SyncGraph,
    /// Whole-program send/accept counts per signal, on the inlined form
    /// (so procedure bodies are counted against their call sites' tasks).
    pub balance: Vec<(SignalId, usize, usize)>,
}

impl<'a> LintContext<'a> {
    /// Derive the lint views of `program`.
    ///
    /// Fails when the program violates the model assumptions
    /// ([`check_model`]) — lints describe *analysable* programs; hard
    /// violations stay errors.
    pub fn new(program: &'a Program, ctx: &'a AnalysisCtx) -> Result<Self, IwaError> {
        check_model(program)?;
        let inlined = inline_procs(program)?;
        let sg = SyncGraph::from_program(&inlined);
        let unrolled = unroll_twice(&inlined);
        let unrolled_sg = SyncGraph::from_program(&unrolled);
        let balance = iwa_analysis::stall::signal_balance(&inlined);
        Ok(LintContext {
            program,
            ctx,
            inlined,
            sg,
            unrolled,
            unrolled_sg,
            balance,
        })
    }

    /// `(sends, accepts)` whole-program counts of `signal`.
    #[must_use]
    pub fn counts(&self, signal: SignalId) -> (usize, usize) {
        self.balance
            .iter()
            .find(|(s, _, _)| *s == signal)
            .map_or((0, 0), |(_, s, a)| (*s, *a))
    }

    /// The first (syntactic order, original program) rendezvous statement
    /// on `signal`, preferring task bodies over procedure bodies.
    #[must_use]
    pub fn first_site_of(&self, signal: SignalId) -> Option<Span> {
        let mut found = None;
        let mut scan = |body: &[Stmt]| {
            for s in body {
                s.visit_rendezvous(&mut |st| {
                    if found.is_none()
                        && st.rendezvous().is_some_and(|r| r.signal == signal)
                    {
                        found = Some(st.span());
                    }
                });
            }
        };
        for t in &self.program.tasks {
            scan(&t.body);
        }
        for p in &self.program.procs {
            scan(&p.body);
        }
        found
    }
}
