//! SARIF 2.1.0 emission.
//!
//! The document is assembled as an explicit [`Value`] tree rather than a
//! derived struct: SARIF needs the literal `"$schema"` member name, and
//! building the insertion-ordered object by hand keeps the output
//! byte-stable — the golden tests and CI pin it.

use crate::{registry, Diagnostic, Severity};
use serde_json::Value;

/// The schema URI stamped into every report.
pub const SCHEMA_URI: &str = "https://json.schemastore.org/sarif-2.1.0.json";

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

fn s(text: &str) -> Value {
    Value::String(text.to_owned())
}

/// Build a SARIF `run` over per-file diagnostic lists (paths become
/// `artifactLocation.uri`s verbatim). `Allow`-level findings must already
/// be filtered out; `Warn` maps to SARIF `"warning"`, `Deny` to
/// `"error"`.
#[must_use]
pub fn to_sarif(files: &[(String, Vec<Diagnostic>)]) -> Value {
    let mut rules: Vec<Value> = registry()
        .iter()
        .map(|p| {
            let l = p.lint();
            obj(vec![
                ("id", s(l.name)),
                ("shortDescription", obj(vec![("text", s(l.description))])),
            ])
        })
        .collect();
    rules.sort_by(|a, b| {
        let id = |v: &Value| v.get("id").and_then(Value::as_str).unwrap_or("").to_owned();
        id(a).cmp(&id(b))
    });

    let mut results = Vec::new();
    for (path, diags) in files {
        for d in diags {
            results.push(result(path, d));
        }
    }

    obj(vec![
        ("$schema", s(SCHEMA_URI)),
        ("version", s("2.1.0")),
        (
            "runs",
            Value::Array(vec![obj(vec![
                (
                    "tool",
                    obj(vec![(
                        "driver",
                        obj(vec![
                            ("name", s("iwa-lint")),
                            ("rules", Value::Array(rules)),
                        ]),
                    )]),
                ),
                ("results", Value::Array(results)),
            ])]),
        ),
    ])
}

fn result(path: &str, d: &Diagnostic) -> Value {
    let level = match d.severity {
        Severity::Deny => "error",
        // `Allow` is filtered before rendering; treat a leak as a note.
        Severity::Warn => "warning",
        Severity::Allow => "note",
    };
    let mut physical = vec![("artifactLocation", obj(vec![("uri", s(path))]))];
    if d.span.is_real() {
        physical.push((
            "region",
            obj(vec![
                ("startLine", Value::UInt(u64::from(d.span.line))),
                ("startColumn", Value::UInt(u64::from(d.span.col))),
                (
                    "endColumn",
                    Value::UInt(u64::from(d.span.col + d.span.len.max(1))),
                ),
            ]),
        ));
    }
    obj(vec![
        ("level", s(level)),
        (
            "locations",
            Value::Array(vec![obj(vec![("physicalLocation", obj(physical))])]),
        ),
        ("message", obj(vec![("text", s(&d.message))])),
        ("ruleId", s(&d.lint)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwa_core::Span;

    fn diag(sev: Severity, span: Span) -> Diagnostic {
        Diagnostic {
            lint: "self-send".into(),
            severity: sev,
            message: "m".into(),
            span,
        }
    }

    #[test]
    fn document_shape_is_sarif_2_1_0() {
        let v = to_sarif(&[("a.iwa".into(), vec![diag(Severity::Warn, Span::new(2, 5, 4))])]);
        assert_eq!(v.get("$schema").and_then(Value::as_str), Some(SCHEMA_URI));
        assert_eq!(v.get("version").and_then(Value::as_str), Some("2.1.0"));
        let run = &v.get("runs").unwrap().as_array().unwrap()[0];
        let driver = run.get("tool").unwrap().get("driver").unwrap();
        assert_eq!(driver.get("name").and_then(Value::as_str), Some("iwa-lint"));
        let rules = driver.get("rules").unwrap().as_array().unwrap();
        assert_eq!(rules.len(), registry().len(), "one rule per lint");
        let results = run.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.get("level").and_then(Value::as_str), Some("warning"));
        assert_eq!(r.get("ruleId").and_then(Value::as_str), Some("self-send"));
        let region = r.get("locations").unwrap().as_array().unwrap()[0]
            .get("physicalLocation")
            .unwrap()
            .get("region")
            .unwrap();
        assert_eq!(region.get("startLine").and_then(Value::as_u64), Some(2));
        assert_eq!(region.get("startColumn").and_then(Value::as_u64), Some(5));
        assert_eq!(region.get("endColumn").and_then(Value::as_u64), Some(9));
    }

    #[test]
    fn deny_maps_to_error_and_dummy_spans_omit_the_region() {
        let v = to_sarif(&[("a.iwa".into(), vec![diag(Severity::Deny, Span::DUMMY)])]);
        let run = &v.get("runs").unwrap().as_array().unwrap()[0];
        let r = &run.get("results").unwrap().as_array().unwrap()[0];
        assert_eq!(r.get("level").and_then(Value::as_str), Some("error"));
        let loc = &r.get("locations").unwrap().as_array().unwrap()[0];
        assert!(loc.get("physicalLocation").unwrap().get("region").is_none());
    }

    #[test]
    fn output_is_deterministic() {
        let files = vec![("a.iwa".to_owned(), vec![diag(Severity::Warn, Span::new(1, 1, 4))])];
        let one = serde_json::to_string_pretty(&to_sarif(&files)).unwrap();
        let two = serde_json::to_string_pretty(&to_sarif(&files)).unwrap();
        assert_eq!(one, two);
    }
}
