//! Rustc-style text rendering with source-excerpt caret lines.

use crate::{Diagnostic, Severity};
use iwa_core::{IwaError, Span};
use std::fmt::Write;

/// Render one diagnostic against its source text:
///
/// ```text
/// warning[self-send]: task 'a' sends signal 'a.m' to itself
///  --> demo.iwa:2:5
///   |
/// 2 |     send a.m;
///   |     ^^^^
/// ```
///
/// Synthetic spans ([`Span::DUMMY`]) skip the excerpt and position; a
/// span whose line is out of range (stale source) degrades the same way.
#[must_use]
pub fn render_diagnostic(path: &str, source: &str, d: &Diagnostic) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}[{}]: {}", d.severity, d.lint, d.message);
    render_snippet(&mut out, path, source, d.span);
    out
}

/// Render a whole diagnostic list, separated by blank lines, followed by
/// a count summary line when anything was reported.
#[must_use]
pub fn render_diagnostics(path: &str, source: &str, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&render_diagnostic(path, source, d));
        out.push('\n');
    }
    let errors = diags.iter().filter(|d| d.severity == Severity::Deny).count();
    let warnings = diags.iter().filter(|d| d.severity == Severity::Warn).count();
    if errors + warnings > 0 {
        let _ = writeln!(
            out,
            "{path}: {errors} error(s), {warnings} warning(s) emitted"
        );
    }
    out
}

/// Render a parse error with the same caret display diagnostics get.
/// Returns `None` for non-parse errors (the caller falls back to the
/// plain `Display` form).
#[must_use]
pub fn render_parse_error(path: &str, source: &str, err: &IwaError) -> Option<String> {
    let IwaError::Parse { line, col, message } = err else {
        return None;
    };
    let mut out = String::new();
    let _ = writeln!(out, "error[parse]: {message}");
    render_snippet(
        &mut out,
        path,
        source,
        Span::new(*line as u32, *col as u32, 1),
    );
    Some(out)
}

fn render_snippet(out: &mut String, path: &str, source: &str, span: Span) {
    let text = span
        .is_real()
        .then(|| source.lines().nth(span.line as usize - 1))
        .flatten();
    let Some(text) = text else {
        let _ = writeln!(out, " --> {path}");
        return;
    };
    let line_no = span.line.to_string();
    let gutter = " ".repeat(line_no.len());
    let _ = writeln!(out, "{gutter}--> {path}:{}:{}", span.line, span.col);
    let _ = writeln!(out, "{gutter} |");
    let _ = writeln!(out, "{line_no} | {text}");
    // Columns are 1-based character counts, matching the lexer.
    let pad = " ".repeat(span.col.saturating_sub(1) as usize);
    let carets = "^".repeat(span.len.max(1) as usize);
    let _ = writeln!(out, "{gutter} | {pad}{carets}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(span: Span) -> Diagnostic {
        Diagnostic {
            lint: "self-send".into(),
            severity: Severity::Warn,
            message: "task 'a' sends signal 'a.m' to itself".into(),
            span,
        }
    }

    #[test]
    fn caret_sits_under_the_keyword() {
        let src = "task a {\n    send a.m;\n}\n";
        let text = render_diagnostic("demo.iwa", src, &diag(Span::new(2, 5, 4)));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            [
                "warning[self-send]: task 'a' sends signal 'a.m' to itself",
                " --> demo.iwa:2:5",
                "  |",
                "2 |     send a.m;",
                "  |     ^^^^",
            ]
        );
        // The caret starts at the same character offset as `send`.
        let src_col = lines[3].find("send").unwrap();
        let caret_col = lines[4].find('^').unwrap();
        assert_eq!(src_col, caret_col);
    }

    #[test]
    fn dummy_span_skips_the_excerpt() {
        let text = render_diagnostic("demo.iwa", "task a { }\n", &diag(Span::DUMMY));
        assert!(text.contains(" --> demo.iwa\n"));
        assert!(!text.contains('^'));
    }

    #[test]
    fn parse_error_gets_a_caret() {
        let err = IwaError::Parse {
            line: 1,
            col: 6,
            message: "expected task name".into(),
        };
        let text = render_parse_error("bad.iwa", "task {\n", &err).unwrap();
        assert!(text.starts_with("error[parse]: expected task name"));
        assert!(text.contains("1 | task {"));
        assert!(text.contains("  |      ^"));
        assert!(render_parse_error("x", "", &IwaError::Io("nope".into())).is_none());
    }

    #[test]
    fn summary_line_counts_by_severity() {
        let src = "task a {\n    send a.m;\n}\n";
        let mut d1 = diag(Span::new(2, 5, 4));
        let d2 = diag(Span::new(2, 5, 4));
        d1.severity = Severity::Deny;
        let text = render_diagnostics("demo.iwa", src, &[d1, d2]);
        assert!(text.ends_with("demo.iwa: 1 error(s), 1 warning(s) emitted\n"));
    }

    #[test]
    fn wide_line_numbers_widen_the_gutter() {
        let src = "x\n".repeat(12);
        let text = render_diagnostic("w.iwa", &src, &diag(Span::new(10, 1, 1)));
        assert!(text.contains("  --> w.iwa:10:1"));
        assert!(text.contains("10 | x"));
    }
}
