//! Every registered lint fires on a minimal trigger program, and a clean
//! program produces zero diagnostics.

use iwa_analysis::AnalysisCtx;
use iwa_lint::{has_denials, registry, run_lints, Diagnostic, LintConfig, Severity};
use iwa_tasklang::parse;

fn lint(src: &str) -> Vec<Diagnostic> {
    let p = parse(src).unwrap();
    run_lints(
        &AnalysisCtx::builder().build(),
        &p,
        &LintConfig::default(),
        &registry(),
    )
    .unwrap()
}

fn names(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.lint.as_str()).collect()
}

#[test]
fn clean_program_has_zero_diagnostics() {
    let diags = lint("task a { send b.m; } task b { accept m; }");
    assert!(diags.is_empty(), "clean program flagged: {diags:?}");
}

#[test]
fn self_send_fires_with_the_send_keyword_span() {
    let diags = lint("task a { send a.m; accept m; }");
    let d = diags.iter().find(|d| d.lint == "self-send").unwrap();
    assert_eq!((d.span.line, d.span.col, d.span.len), (1, 10, 4));
    assert!(d.message.contains("task 'a' sends signal 'a.m' to itself"));
}

#[test]
fn unmatched_signal_fires_on_the_send_site() {
    let diags = lint("task a { send b.m; } task b { }");
    let d = diags.iter().find(|d| d.lint == "unmatched-signal").unwrap();
    assert!(d.message.contains("sent but never accepted"));
    assert_eq!(d.span.line, 1);
    assert!(names(&diags).contains(&"silent-task"), "b is silent too");
}

#[test]
fn entry_never_called_fires_on_the_accept_site() {
    let diags = lint("task a { send b.x; } task b { accept x; accept m; }");
    let d = diags.iter().find(|d| d.lint == "entry-never-called").unwrap();
    assert!(d.message.contains("'b.m' is accepted but never called"));
}

#[test]
fn silent_task_fires_on_the_task_declaration() {
    let diags = lint("task quiet { } task a { send b.m; } task b { accept m; }");
    let d = diags.iter().find(|d| d.lint == "silent-task").unwrap();
    assert!(d.message.contains("'quiet'"));
    assert_eq!((d.span.line, d.span.col, d.span.len), (1, 6, 5));
}

#[test]
fn never_started_task_fires_when_every_entry_path_is_dead() {
    let diags = lint("task a { send b.go; } task b { accept nostart; accept go; }");
    let d = diags.iter().find(|d| d.lint == "never-started-task").unwrap();
    assert!(d.message.contains("task 'b' can never start"));
}

#[test]
fn never_started_task_spares_skippable_and_startable_tasks() {
    // The accept is behind a conditional: a rendezvous-free path exists.
    let diags = lint("task a { } task b { if { accept m; } }");
    assert!(!names(&diags).contains(&"never-started-task"));
}

#[test]
fn unreachable_statement_fires_after_a_wait_that_cannot_complete() {
    let diags = lint("task a { send a.m; send b.x; accept m; } task b { accept x; }");
    let d = diags
        .iter()
        .find(|d| d.lint == "unreachable-statement")
        .unwrap();
    assert!(d.message.contains("the send at 1:10 can never complete"));
    assert_eq!((d.span.line, d.span.col), (1, 20));
}

#[test]
fn self_rendezvous_cycle_sees_through_procedure_inlining() {
    // The send hides in a procedure, so the AST-level self-send lint
    // cannot attribute it; the inlined sync graph can.
    let diags = lint("proc p { send t.m; } task t { call p; accept m; }");
    assert!(names(&diags).contains(&"self-rendezvous-cycle"));
    assert!(!names(&diags).contains(&"self-send"));
}

#[test]
fn always_stalling_wait_points_at_the_first_site_of_the_signal() {
    let diags = lint("task a { send b.m; send b.m; } task b { accept m; }");
    let d = diags
        .iter()
        .find(|d| d.lint == "always-stalling-wait")
        .unwrap();
    assert!(d.message.contains("'b.m'"), "{}", d.message);
    assert!(d.span.is_real());
}

#[test]
fn deadlock_head_is_deny_by_default_and_spans_survive_unrolling() {
    let src = "task t1 { while { send t2.a; accept b; } }\n\
               task t2 { while { send t1.b; accept a; } }\n";
    let diags = lint(src);
    let heads: Vec<_> = diags.iter().filter(|d| d.lint == "deadlock-head").collect();
    assert!(!heads.is_empty(), "crossed rendezvous must flag: {diags:?}");
    assert!(has_denials(&diags));
    for d in &heads {
        assert!(
            d.span.is_real(),
            "unrolled-copy findings must map back to source: {d:?}"
        );
        assert!(d.span.line <= 2, "span inside the original two lines");
    }
}

#[test]
fn transform_copies_dedup_to_one_finding_per_source_site() {
    // Two unrolled copies of the loop body share the original spans, so
    // each flagged head appears exactly once per (site, message).
    let src = "task t1 { while { send t2.a; accept b; } }\n\
               task t2 { while { send t1.b; accept a; } }\n";
    let diags = lint(src);
    let mut keys: Vec<_> = diags
        .iter()
        .map(|d| (d.lint.clone(), d.span, d.message.clone()))
        .collect();
    keys.sort();
    let mut deduped = keys.clone();
    deduped.dedup();
    assert_eq!(keys, deduped, "duplicate findings leaked: {diags:?}");
}

#[test]
fn severity_overrides_and_deny_warnings_change_the_outcome() {
    let p = parse("task a { send a.m; accept m; }").unwrap();
    let ctx = AnalysisCtx::builder().build();

    let allow_all = LintConfig {
        levels: registry()
            .iter()
            .map(|pass| (pass.lint().name.to_owned(), Severity::Allow))
            .collect(),
        deny_warnings: false,
    };
    assert!(run_lints(&ctx, &p, &allow_all, &registry()).unwrap().is_empty());

    let deny = LintConfig {
        levels: vec![("deadlock-head".to_owned(), Severity::Allow)],
        deny_warnings: true,
    };
    let diags = run_lints(&ctx, &p, &deny, &registry()).unwrap();
    assert!(!diags.is_empty());
    assert!(diags.iter().all(|d| d.severity == Severity::Deny));
    assert!(!names(&diags).contains(&"deadlock-head"));
}

#[test]
fn lint_output_is_deterministic_across_worker_counts() {
    let src = "task t1 { while { send t2.a; accept b; } }\n\
               task t2 { while { send t1.b; accept a; } }\n\
               task quiet { }\n";
    let p = parse(src).unwrap();
    let cfg = LintConfig::default();
    let base = run_lints(&AnalysisCtx::builder().workers(1).build(), &p, &cfg, &registry()).unwrap();
    for workers in [2, 8] {
        let other =
            run_lints(&AnalysisCtx::builder().workers(workers).build(), &p, &cfg, &registry()).unwrap();
        assert_eq!(base, other, "-j {workers} diverged");
    }
}

#[test]
fn invalid_programs_are_errors_not_lints() {
    // An accept outside the signal's receiving task violates the model.
    let mut b = iwa_tasklang::ProgramBuilder::new();
    let a = b.task("a");
    let z = b.task("z");
    let sig = b.signal(z, "m");
    b.body(a, |t| {
        t.accept(sig);
    });
    b.body(z, |t| {
        t.send(sig);
    });
    let p = b.build();
    assert!(run_lints(&AnalysisCtx::builder().build(), &p, &LintConfig::default(), &registry()).is_err());
}
