//! Parameterised workload families used by the scaling and baseline
//! experiments. All deterministic.

use iwa_tasklang::ast::{Program, ProgramBuilder};
use iwa_workloads::{random_structured, StructuredConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `pairs` independent producer/consumer couples, each exchanging `depth`
/// messages. The wave space is the product of the pairs' spaces —
/// exponential in `pairs` — while the program (and its polynomial
/// analyses) grow only linearly. The workhorse of the E10 baseline
/// crossover.
#[must_use]
pub fn replicated_pairs(pairs: usize, depth: usize) -> Program {
    let mut b = ProgramBuilder::new();
    for k in 0..pairs {
        let prod = b.task(&format!("prod{k}"));
        let cons = b.task(&format!("cons{k}"));
        let item = b.signal(cons, "item");
        let _ = prod;
        b.body(prod, move |t| {
            for _ in 0..depth {
                t.send(item);
            }
        });
        b.body(cons, move |t| {
            for _ in 0..depth {
                t.accept(item);
            }
        });
    }
    b.build()
}

/// A deterministic random structured program of roughly `size` rendezvous
/// across `tasks` tasks (loop-free), for the E9 scaling sweeps.
#[must_use]
pub fn sized_random(seed: u64, tasks: usize, size_per_task: usize) -> Program {
    sized_random_typed(seed, tasks, size_per_task, 2)
}

/// [`sized_random`] with a configurable signal alphabet: more message
/// types ⇒ fewer complementary pairs ⇒ *sparser* sync edges, which is the
/// knob the E9 experiment turns to expose the `|E_CLG|` term in the
/// paper's `O(|N_CLG|·(|N_CLG|+|E_CLG|))` bound.
#[must_use]
pub fn sized_random_typed(
    seed: u64,
    tasks: usize,
    size_per_task: usize,
    message_types: usize,
) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    random_structured(
        &mut rng,
        &StructuredConfig {
            tasks,
            rendezvous_per_task: size_per_task,
            branch_prob: 0.15,
            loop_prob: 0.0,
            message_types,
        },
    )
}

/// A long chain of request/response hops (client → s1 → s2 → … → sink),
/// scaling the *diameter* rather than the width. Deadlock-free; stresses
/// the sequence fixpoint.
#[must_use]
pub fn relay_chain(hops: usize) -> Program {
    assert!(hops >= 1);
    let mut b = ProgramBuilder::new();
    let ids: Vec<_> = (0..=hops).map(|i| b.task(&format!("hop{i}"))).collect();
    let fwd: Vec<_> = (1..=hops).map(|i| b.signal(ids[i], "fwd")).collect();
    let back: Vec<_> = (0..hops).map(|i| b.signal(ids[i], "back")).collect();
    for i in 0..=hops {
        let send_fwd = if i < hops { Some(fwd[i]) } else { None };
        let recv_fwd = if i > 0 { Some(fwd[i - 1]) } else { None };
        let send_back = if i > 0 { Some(back[i - 1]) } else { None };
        let recv_back = if i < hops { Some(back[i]) } else { None };
        b.body(ids[i], move |t| {
            if let Some(s) = recv_fwd {
                t.accept(s);
            }
            if let Some(s) = send_fwd {
                t.send(s);
            }
            if let Some(s) = recv_back {
                t.accept(s);
            }
            if let Some(s) = send_back {
                t.send(s);
            }
        });
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwa_syncgraph::SyncGraph;
    use iwa_tasklang::validate::check_model;
    use iwa_wavesim::{explore, ExploreConfig, Verdict};

    #[test]
    fn replicated_pairs_scale_linearly_in_code_exponentially_in_waves() {
        let p2 = replicated_pairs(2, 2);
        let p3 = replicated_pairs(3, 2);
        assert_eq!(p2.num_rendezvous(), 8);
        assert_eq!(p3.num_rendezvous(), 12);
        let e2 = explore(&SyncGraph::from_program(&p2), &ExploreConfig::default()).unwrap();
        let e3 = explore(&SyncGraph::from_program(&p3), &ExploreConfig::default()).unwrap();
        assert_eq!(e2.verdict, Verdict::AnomalyFree);
        assert_eq!(e3.verdict, Verdict::AnomalyFree);
        // Each pair contributes 3 lockstep positions; waves multiply:
        // states(pairs=k, depth=2) = 3^k.
        assert_eq!(e2.states, 9);
        assert_eq!(e3.states, 27);
    }

    #[test]
    fn relay_chain_is_clean_and_validates() {
        for hops in [1, 3, 6] {
            let p = relay_chain(hops);
            check_model(&p).unwrap();
            let e = explore(&SyncGraph::from_program(&p), &ExploreConfig::default()).unwrap();
            assert_eq!(e.verdict, Verdict::AnomalyFree, "hops={hops}");
        }
    }

    #[test]
    fn sized_random_is_deterministic() {
        assert_eq!(
            sized_random(5, 3, 4).to_source(),
            sized_random(5, 3, 4).to_source()
        );
    }
}
