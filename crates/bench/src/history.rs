//! The tracked bench trajectory: `reports/bench_history.jsonl`.
//!
//! `BENCH_core.json` is a snapshot — every `iwa bench` run overwrites it,
//! so by itself it can neither prove a speedup nor catch a slow drift.
//! This module adds the missing time axis: one JSON line is **appended**
//! per bench run, and the newest prior record of the same mode is the
//! *trajectory* a run is validated against.
//!
//! A record carries only fields that are either deterministic for a given
//! source tree (steps, `scc_runs`, heads examined — the workload seeds are
//! baked into the suite, and rung selection is step-gated, never
//! wall-gated) or explicitly informational (`wall_ms`, the one
//! host-dependent column, kept so speedups can be *recorded* but never
//! used by validation). Validation gates on **steps only**: a run fails
//! when any family/size row needs more than
//! [`DEFAULT_STEP_REGRESSION_PCT`] percent extra steps over the recorded
//! trajectory.

use crate::suite::BenchReport;
use serde::Serialize;
use serde_json::Value;

/// Version of one `bench_history.jsonl` record. Bump on any field change.
pub const HISTORY_SCHEMA_VERSION: u32 = 1;

/// Default regression threshold: fail when a row's step count exceeds the
/// trajectory's by more than this percentage.
pub const DEFAULT_STEP_REGRESSION_PCT: u64 = 15;

/// Default on-disk location of the trajectory, relative to the repo root.
pub const DEFAULT_HISTORY_PATH: &str = "reports/bench_history.jsonl";

/// One trajectory point: the host-independent core of a [`BenchRow`]
/// (`crate::suite::BenchRow`) plus the informational wall-clock column.
#[derive(Clone, Debug, Serialize)]
pub struct HistoryRow {
    /// Stable family name.
    pub family: String,
    /// The family's scale parameter.
    pub size: u64,
    /// Deterministic budget steps — the only validated column.
    pub steps: u64,
    /// SCC passes the analysis performed (deterministic).
    pub scc_runs: u64,
    /// Head hypotheses examined (deterministic).
    pub heads_examined: u64,
    /// Wall-clock milliseconds. Host-dependent; informational only —
    /// validation never reads it.
    pub wall_ms: u64,
}

/// One appended line of `bench_history.jsonl`.
#[derive(Clone, Debug, Serialize)]
pub struct HistoryRecord {
    /// The record shape version ([`HISTORY_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// `"smoke"` or `"full"` — records only validate against their own mode.
    pub mode: String,
    /// Free-form label for the run (e.g. a milestone name); `"-"` when the
    /// caller gave none.
    pub label: String,
    /// The workload seed baked into the suite's randomized family
    /// (`sized_random`); recorded so a reader can tell two trajectories
    /// apart if the suite ever reseeds.
    pub seed: u64,
    /// One point per family member, in suite order.
    pub rows: Vec<HistoryRow>,
}

impl HistoryRecord {
    /// Project a [`BenchReport`] onto its trajectory record.
    #[must_use]
    pub fn from_report(report: &BenchReport, label: &str) -> HistoryRecord {
        HistoryRecord {
            schema_version: HISTORY_SCHEMA_VERSION,
            mode: report.mode.clone(),
            label: if label.is_empty() { "-" } else { label }.to_owned(),
            seed: crate::suite::SIZED_RANDOM_SEED,
            rows: report
                .rows
                .iter()
                .map(|r| HistoryRow {
                    family: r.family.clone(),
                    size: r.size,
                    steps: r.steps,
                    scc_runs: r.metrics.scc_runs,
                    heads_examined: r.metrics.heads_examined,
                    wall_ms: r.wall_ms,
                })
                .collect(),
        }
    }
}

/// Append `record` as one compact JSON line to `path`, creating the file
/// (and its parent directory) on first use. Existing lines are never
/// rewritten — the trajectory is append-only.
///
/// # Errors
///
/// Returns a human-readable description of the I/O failure.
pub fn append(path: &str, record: &HistoryRecord) -> Result<(), String> {
    use std::io::Write;
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    let line = serde_json::to_string(record).map_err(|e| e.to_string())?;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open {path}: {e}"))?;
    writeln!(f, "{line}").map_err(|e| format!("cannot append to {path}: {e}"))
}

/// The steps a past record promises, keyed by `(family, size)`.
type Trajectory = Vec<((String, u64), u64)>;

/// Load the newest record of `mode` from `path`. Returns `Ok(None)` when
/// the file does not exist or holds no record of that mode (a fresh
/// trajectory validates trivially).
///
/// # Errors
///
/// Returns a description of an unreadable file, malformed line, or
/// unsupported schema version — corruption must fail loudly, not pass as
/// "no trajectory".
pub fn load_latest(path: &str, mode: &str) -> Result<Option<Trajectory>, String> {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("cannot read {path}: {e}")),
    };
    let mut latest: Option<Trajectory> = None;
    for (lineno, line) in src.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: invalid JSON: {e}", lineno + 1))?;
        let version = v
            .get("schema_version")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("{path}:{}: missing schema_version", lineno + 1))?;
        if version != u64::from(HISTORY_SCHEMA_VERSION) {
            return Err(format!(
                "{path}:{}: schema_version {version} != supported {HISTORY_SCHEMA_VERSION}",
                lineno + 1
            ));
        }
        if v.get("mode").and_then(Value::as_str) != Some(mode) {
            continue;
        }
        let rows = v
            .get("rows")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("{path}:{}: missing rows", lineno + 1))?;
        let mut t: Trajectory = Vec::with_capacity(rows.len());
        for row in rows {
            let family = row
                .get("family")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{path}:{}: row missing family", lineno + 1))?;
            let size = row
                .get("size")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{path}:{}: row missing size", lineno + 1))?;
            let steps = row
                .get("steps")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{path}:{}: row missing steps", lineno + 1))?;
            t.push(((family.to_owned(), size), steps));
        }
        latest = Some(t);
    }
    Ok(latest)
}

/// Validate `report` against the newest same-mode record in `path`.
///
/// Returns the per-row comparison lines (for display). Rows absent from
/// the trajectory (new families/sizes) pass with a note; a missing or
/// empty trajectory passes trivially.
///
/// # Errors
///
/// Returns one message per regressing row — any row whose steps exceed the
/// trajectory's by more than `threshold_pct` percent — or a corruption
/// error from [`load_latest`].
pub fn validate_trajectory(
    path: &str,
    report: &BenchReport,
    threshold_pct: u64,
) -> Result<Vec<String>, String> {
    let Some(trajectory) = load_latest(path, &report.mode)? else {
        return Ok(vec![format!(
            "no {} trajectory in {path} yet: validation passes trivially",
            report.mode
        )]);
    };
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    for row in &report.rows {
        let key = (row.family.clone(), row.size);
        let Some(&(_, old_steps)) = trajectory.iter().find(|(k, _)| *k == key) else {
            lines.push(format!(
                "{:<18} size {:>3}: new row (not in trajectory)",
                row.family, row.size
            ));
            continue;
        };
        // Integer-exact threshold: new > old * (100 + pct) / 100 fails.
        let limit = old_steps.saturating_mul(100 + threshold_pct) / 100;
        let verdict = if row.steps > limit { "REGRESSED" } else { "ok" };
        lines.push(format!(
            "{:<18} size {:>3}: {:>12} steps vs {:>12} recorded ({verdict})",
            row.family, row.size, row.steps, old_steps
        ));
        if row.steps > limit {
            failures.push(format!(
                "{} size {}: {} steps exceeds recorded {} by more than {}%",
                row.family, row.size, row.steps, old_steps, threshold_pct
            ));
        }
    }
    if failures.is_empty() {
        Ok(lines)
    } else {
        Err(failures.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::run_suite;

    fn tmp(name: &str) -> String {
        let d = std::env::temp_dir().join(format!("iwa_hist_{name}_{}", std::process::id()));
        let _ = std::fs::remove_file(&d);
        d.to_string_lossy().into_owned()
    }

    #[test]
    fn append_then_validate_roundtrip() {
        let path = tmp("roundtrip");
        let report = run_suite(true);
        // Empty trajectory: passes trivially.
        let lines = validate_trajectory(&path, &report, 15).unwrap();
        assert!(lines[0].contains("trivially"));
        append(&path, &HistoryRecord::from_report(&report, "t0")).unwrap();
        // Same run against its own record: every row ok.
        let lines = validate_trajectory(&path, &report, 15).unwrap();
        assert!(lines.iter().all(|l| l.contains("(ok)")), "{lines:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_step_regression_fails_validation() {
        let path = tmp("regress");
        let report = run_suite(true);
        append(&path, &HistoryRecord::from_report(&report, "t0")).unwrap();
        let mut worse = report.clone();
        worse.rows[0].steps = worse.rows[0].steps * 2 + 100;
        let err = validate_trajectory(&path, &worse, 15).unwrap_err();
        assert!(err.contains("exceeds recorded"), "{err}");
        // Within the threshold passes.
        let mut slight = report.clone();
        slight.rows[0].steps += slight.rows[0].steps / 10; // +10% < 15%
        validate_trajectory(&path, &slight, 15).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn records_are_appended_not_rewritten_and_latest_wins() {
        let path = tmp("append");
        let report = run_suite(true);
        let mut r0 = HistoryRecord::from_report(&report, "old");
        for row in &mut r0.rows {
            row.steps *= 100; // a very slow past
        }
        append(&path, &r0).unwrap();
        append(&path, &HistoryRecord::from_report(&report, "new")).unwrap();
        let n = std::fs::read_to_string(&path).unwrap().lines().count();
        assert_eq!(n, 2);
        // Validation compares against the NEWEST record, not the slow one.
        let mut worse = report.clone();
        worse.rows[0].steps *= 3;
        assert!(validate_trajectory(&path, &worse, 15).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_lines_fail_loudly() {
        let path = tmp("corrupt");
        std::fs::write(&path, "{not json\n").unwrap();
        let report = run_suite(true);
        assert!(validate_trajectory(&path, &report, 15).is_err());
        std::fs::write(&path, "{\"schema_version\": 999, \"mode\": \"smoke\"}\n").unwrap();
        let err = validate_trajectory(&path, &report, 15).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
