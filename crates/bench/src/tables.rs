//! Minimal fixed-width table rendering and JSON persistence for the
//! report binary.

use serde::Serialize;
use std::fmt::Write as _;

/// A rendered experiment table.
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    /// Experiment id, e.g. `"E9"`.
    pub id: String,
    /// One-line description.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells (stringified).
    pub rows: Vec<Vec<String>>,
    /// Free-form conclusions appended under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    #[must_use]
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Table {
        Table {
            id: id.to_owned(),
            title: title.to_owned(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "column mismatch");
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as fixed-width text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:>width$}  ", c, width = widths[i]);
            }
            s.trim_end().to_owned()
        };
        let _ = writeln!(out, "{}", line(&self.columns, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        out
    }

    /// Persist as JSON under `dir/<id>.json`.
    pub fn save_json(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id.to_lowercase()));
        std::fs::write(path, serde_json::to_string_pretty(self).expect("serializable"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("E0", "demo", &["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        t.note("done");
        let s = t.render();
        assert!(s.contains("E0 — demo"));
        assert!(s.contains("note: done"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn row_arity_checked() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn json_roundtrip() {
        let mut t = Table::new("E0", "demo", &["a"]);
        t.row(vec!["1".into()]);
        let dir = std::env::temp_dir().join("iwa_tables_test");
        t.save_json(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("e0.json")).unwrap();
        assert!(content.contains("\"id\": \"E0\""));
    }
}
