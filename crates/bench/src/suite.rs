//! The `iwa bench` pipeline: drive the workload families through the
//! engine and emit one machine-readable report (`BENCH_core.json`).
//!
//! The report serves two masters. As a *benchmark*, each row records the
//! wall-clock cost of analysing one family member. As a *regression
//! oracle*, each row embeds the engine's deterministic
//! [`Counters`] — nodes built, cycles enumerated, pruning-rule hits —
//! which must not drift across refactors: `scripts/ci.sh` diffs the
//! metric halves (never the timings) of smoke runs.
//!
//! Every family is analysed from the [`Rung::Heads`](iwa_engine::Rung)
//! rung under a *step* ceiling, so rung selection (and with it every
//! counter) is reproducible for a given mode — wall-clock never decides
//! anything here.

use crate::families::{relay_chain, replicated_pairs, sized_random};
use crate::timed;
use iwa_core::obs::{Counters, Metrics};
use iwa_engine::{analyze, analyze_model, EngineOptions, Rung};
use iwa_frontend::{registry as frontends, Lang};
use iwa_tasklang::ast::Program;
use iwa_workloads::adversarial::{deep_loop_nest, rendezvous_mesh, wide_branch};
use iwa_workloads::chan::{chan_ring, chan_select_storm};
use iwa_workloads::locks::{lock_chain, lock_mesh};
use serde::Serialize;
use serde_json::Value;

/// Version of the `BENCH_core.json` shape. Bump on any field addition,
/// removal, or rename; [`validate_report`] enforces the current shape.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// One analysed family member.
#[derive(Clone, Debug, Serialize)]
pub struct BenchRow {
    /// Stable family name (`replicated_pairs`, `relay_chain`, ...).
    pub family: String,
    /// The family's scale parameter (pairs, hops, tasks, width, ...).
    pub size: u64,
    /// Tasks in the generated program.
    pub tasks: u64,
    /// Rendezvous in the generated program.
    pub rendezvous: u64,
    /// Wall-clock milliseconds for the whole `analyze` call. The only
    /// machine-dependent field; comparisons must mask it.
    pub wall_ms: u64,
    /// Cooperative budget steps the ladder consumed (deterministic).
    pub steps: u64,
    /// The engine's deterministic counter block for this run, including
    /// the per-rule pruning hit counts.
    pub metrics: Counters,
}

/// The whole suite's output.
#[derive(Clone, Debug, Serialize)]
pub struct BenchReport {
    /// The JSON shape version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// `"smoke"` or `"full"`.
    pub mode: String,
    /// One row per family member, in a fixed order.
    pub rows: Vec<BenchRow>,
}

/// The seed baked into the suite's randomized family. Public so the bench
/// trajectory ([`crate::history`]) can record which workload it describes.
pub const SIZED_RANDOM_SEED: u64 = 7;

/// One suite member's model: a tasklang AST, or `.lok` / `.chan` source
/// text (the frontend's parse + dataflow + lowering are part of what
/// those rows measure).
enum Member {
    Iwa(Program),
    Lok(String),
    Chan(String),
}

/// The suite: `(family, size, member)` triples for one mode. Smoke mode
/// shrinks every family to CI-friendly sizes without dropping any family —
/// the regression oracle needs every counter source exercised.
fn members(smoke: bool) -> Vec<(&'static str, u64, Member)> {
    let mut out: Vec<(&'static str, u64, Member)> = Vec::new();
    let pair_sizes: &[u64] = if smoke { &[4] } else { &[4, 8, 16] };
    for &n in pair_sizes {
        out.push(("replicated_pairs", n, Member::Iwa(replicated_pairs(n as usize, 2))));
    }
    let hop_sizes: &[u64] = if smoke { &[8] } else { &[8, 16, 32] };
    for &n in hop_sizes {
        out.push(("relay_chain", n, Member::Iwa(relay_chain(n as usize))));
    }
    let random_sizes: &[u64] = if smoke { &[4] } else { &[4, 8, 12] };
    for &n in random_sizes {
        out.push((
            "sized_random",
            n,
            Member::Iwa(sized_random(SIZED_RANDOM_SEED, n as usize, 6)),
        ));
    }
    let nest_sizes: &[u64] = if smoke { &[2] } else { &[2, 3] };
    for &n in nest_sizes {
        out.push(("deep_loop_nest", n, Member::Iwa(deep_loop_nest(n as usize, 2))));
    }
    let mesh_sizes: &[u64] = if smoke { &[4] } else { &[4, 6, 8] };
    for &n in mesh_sizes {
        out.push(("rendezvous_mesh", n, Member::Iwa(rendezvous_mesh(n as usize, true))));
    }
    let branch_sizes: &[u64] = if smoke { &[4] } else { &[4, 6, 8] };
    for &n in branch_sizes {
        out.push(("wide_branch", n, Member::Iwa(wide_branch(n as usize))));
    }
    // The `.lok` frontend families: a witness-producing ring and a dense
    // clean mesh, so both the anomaly and certification paths are timed.
    let chain_sizes: &[u64] = if smoke { &[8] } else { &[8, 16, 32] };
    for &n in chain_sizes {
        out.push(("lock_chain", n, Member::Lok(lock_chain(n as usize, false))));
    }
    let lock_mesh_sizes: &[u64] = if smoke { &[4] } else { &[4, 6, 8] };
    for &n in lock_mesh_sizes {
        out.push(("lock_mesh", n, Member::Lok(lock_mesh(n as usize, true))));
    }
    // The `.chan` frontend families: a witness-producing port ring and a
    // clean all-arms-served select storm, mirroring the `.lok` pair.
    let ring_sizes: &[u64] = if smoke { &[8] } else { &[8, 16, 32] };
    for &n in ring_sizes {
        out.push(("chan_ring", n, Member::Chan(chan_ring(n as usize, false))));
    }
    let storm_sizes: &[u64] = if smoke { &[4] } else { &[4, 8, 16] };
    for &n in storm_sizes {
        out.push((
            "chan_select_storm",
            n,
            Member::Chan(chan_select_storm(n as usize, false)),
        ));
    }
    out
}

/// Run the whole suite. `smoke` shrinks the sizes for CI; the row set and
/// schema are identical in both modes.
#[must_use]
pub fn run_suite(smoke: bool) -> BenchReport {
    let max_steps = if smoke { 500_000 } else { 20_000_000 };
    let rows = members(smoke)
        .into_iter()
        .map(|(family, size, member)| {
            let metrics = Metrics::new();
            let opts = EngineOptions {
                // Heads keeps every family polynomial; the step ceiling
                // (never a wall-clock deadline) keeps rung selection — and
                // therefore every counter — deterministic.
                start: Rung::Heads,
                max_steps: Some(max_steps),
                metrics: Some(metrics.clone()),
                ..EngineOptions::default()
            };
            // Non-tasklang members load inside the timed section: the
            // frontend's parse, effect dataflow, and lowering are part of
            // the family's cost.
            let frontend_timed = |lang: Lang, src: String| {
                let (outcome, wall) = timed(|| {
                    let model = frontends::by_lang(lang)
                        .load(&src)
                        .expect("generated frontend families are valid");
                    let report = analyze_model(&model, &opts);
                    let sg = model.sync_graph();
                    (sg.num_tasks as u64, sg.num_rendezvous() as u64, report)
                });
                let (tasks, rendezvous, report) = outcome;
                (tasks, rendezvous, report, wall)
            };
            let (tasks, rendezvous, report, wall) = match member {
                Member::Iwa(program) => {
                    let (report, wall) = timed(|| analyze(&program, &opts));
                    (
                        program.num_tasks() as u64,
                        program.num_rendezvous() as u64,
                        report,
                        wall,
                    )
                }
                Member::Lok(src) => frontend_timed(Lang::Lok, src),
                Member::Chan(src) => frontend_timed(Lang::Chan, src),
            };
            let report = report.expect("generated families are valid programs");
            BenchRow {
                family: family.to_owned(),
                size,
                tasks,
                rendezvous,
                wall_ms: wall.as_millis().try_into().unwrap_or(u64::MAX),
                steps: report.attempts.iter().map(|a| a.steps).sum(),
                metrics: metrics.snapshot(),
            }
        })
        .collect();
    BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        mode: if smoke { "smoke" } else { "full" }.to_owned(),
        rows,
    }
}

/// Validate a parsed `BENCH_core.json` against the current schema:
/// version, mode, row fields, and a complete counter block per row.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_report(v: &Value) -> Result<(), String> {
    let version = v
        .get("schema_version")
        .and_then(Value::as_u64)
        .ok_or("missing numeric schema_version")?;
    if version != u64::from(BENCH_SCHEMA_VERSION) {
        return Err(format!(
            "schema_version {version} != supported {BENCH_SCHEMA_VERSION}"
        ));
    }
    match v.get("mode").and_then(Value::as_str) {
        Some("smoke" | "full") => {}
        other => return Err(format!("mode must be \"smoke\" or \"full\", got {other:?}")),
    }
    let rows = v
        .get("rows")
        .and_then(Value::as_array)
        .ok_or("missing rows array")?;
    if rows.is_empty() {
        return Err("rows is empty".to_owned());
    }
    // The counter block must carry exactly the keys `Counters` serializes
    // today — derived from the type, so this check can never go stale.
    let counter_keys: Vec<String> = match serde_json::to_value(&Counters::default()) {
        Ok(Value::Object(entries)) => entries.into_iter().map(|(k, _)| k).collect(),
        _ => unreachable!("Counters serializes as an object"),
    };
    for (i, row) in rows.iter().enumerate() {
        let ctx = |what: &str| format!("rows[{i}]: {what}");
        if row.get("family").and_then(Value::as_str).is_none() {
            return Err(ctx("missing string family"));
        }
        for field in ["size", "tasks", "rendezvous", "wall_ms", "steps"] {
            if row.get(field).and_then(Value::as_u64).is_none() {
                return Err(ctx(&format!("missing numeric {field}")));
            }
        }
        let metrics = row.get("metrics").ok_or_else(|| ctx("missing metrics"))?;
        for key in &counter_keys {
            if metrics.get(key).and_then(Value::as_u64).is_none() {
                return Err(ctx(&format!("metrics missing numeric {key}")));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_smoke_suite_validates_against_its_own_schema() {
        let report = run_suite(true);
        let v = serde_json::to_value(&report).unwrap();
        validate_report(&v).unwrap();
        assert!(report.rows.iter().any(|r| r.family == "rendezvous_mesh"));
        // The suite must exercise the refined pipeline: some family
        // produces head examinations, else the regression oracle is blind.
        assert!(report.rows.iter().any(|r| r.metrics.heads_examined > 0));
        // The .lok and .chan families ride along, with real model sizes
        // recorded.
        for fam in ["lock_chain", "lock_mesh", "chan_ring", "chan_select_storm"] {
            let row = report
                .rows
                .iter()
                .find(|r| r.family == fam)
                .unwrap_or_else(|| panic!("{fam} missing"));
            assert!(row.tasks > 0 && row.rendezvous > 0, "{fam}: {row:?}");
        }
    }

    #[test]
    fn smoke_metrics_are_reproducible() {
        let a = run_suite(true);
        let b = run_suite(true);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.family, rb.family);
            assert_eq!(ra.metrics, rb.metrics, "family {}", ra.family);
            assert_eq!(ra.steps, rb.steps, "family {}", ra.family);
        }
    }

    #[test]
    fn the_validator_rejects_a_wrong_version_and_missing_counters() {
        let mut v = serde_json::to_value(&run_suite(true)).unwrap();
        if let Value::Object(entries) = &mut v {
            for (k, val) in entries.iter_mut() {
                if k == "schema_version" {
                    *val = Value::UInt(999);
                }
            }
        }
        assert!(validate_report(&v).unwrap_err().contains("schema_version"));
        assert!(validate_report(&Value::Object(vec![])).is_err());
    }
}
