//! Shared experiment machinery: workload families, timing helpers, and
//! table rendering for the `report` binary and the criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod families;
pub mod history;
pub mod suite;
pub mod tables;

use std::time::{Duration, Instant};

/// Time one closure, returning its result and the wall-clock duration.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed())
}

/// Median of repeated timings (the report uses medians of 5; criterion does
/// proper statistics for the benches).
pub fn median_time<T>(reps: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut samples: Vec<Duration> = (0..reps.max(1)).map(|_| timed(&mut f).1).collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Least-squares slope of `log(y)` against `log(x)` — the report quotes it
/// as the empirical complexity exponent.
#[must_use]
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return f64::NAN;
    }
    let sx: f64 = pts.iter().map(|(x, _)| x).sum();
    let sy: f64 = pts.iter().map(|(_, y)| y).sum();
    let sxx: f64 = pts.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = pts.iter().map(|(x, y)| x * y).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_a_quadratic_is_two() {
        let pts: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((loglog_slope(&pts) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slope_ignores_nonpositive_points() {
        let pts = vec![(0.0, 1.0), (1.0, 1.0), (2.0, 2.0), (4.0, 4.0)];
        assert!((loglog_slope(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn median_time_runs() {
        let d = median_time(3, || std::hint::black_box(1 + 1));
        assert!(d.as_nanos() < 1_000_000_000);
    }
}
