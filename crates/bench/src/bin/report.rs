//! The experiment report generator: regenerates every table/figure of the
//! reproduction (see DESIGN.md §3 for the experiment index) as text and
//! JSON (under `reports/`).
//!
//! ```sh
//! cargo run --release -p iwa-bench --bin report            # everything
//! cargo run --release -p iwa-bench --bin report -- e9 e10  # a subset
//! cargo run --release -p iwa-bench --bin report -- --quick # smaller sweeps
//! ```

use iwa_analysis::exact::{ConstraintSet, ExactBudget, ExactResult};
use iwa_analysis::{
    naive_analysis, AnalysisCtx, RefinedOptions, RefinedResult, SequenceInfo,
    StallOptions, StallReport, StallVerdict, Tier,
};
use iwa_bench::families::{replicated_pairs, sized_random_typed};
use iwa_bench::tables::Table;
use iwa_bench::{loglog_slope, median_time, timed};
use iwa_petri::net_from_sync_graph;
use iwa_sat::{solve, Cnf};
use iwa_syncgraph::SyncGraph;
use iwa_tasklang::transforms::unroll_twice;
use iwa_tasklang::Program;
use iwa_wavesim::{explore, ExploreConfig};
use iwa_workloads::{figures, random_balanced, random_structured, BalancedConfig, StructuredConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

struct Ctx {
    quick: bool,
    out_dir: PathBuf,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    let ctx = Ctx {
        quick,
        out_dir: PathBuf::from("reports"),
    };

    type Experiment = fn(&Ctx) -> Table;
    let all: Vec<(&str, Experiment)> = vec![
        ("e1", e_figures),
        ("e6", e6_lemma1),
        ("e8", e8_reductions),
        ("e9", e9_scaling),
        ("e10", e10_baselines),
        ("e11", e11_precision),
        ("e15", e15_constraint4),
        ("e16", e16_ablation),
        ("e17", e17_condition_coexec),
    ];
    for (id, f) in all {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == id) {
            continue;
        }
        let (table, took) = timed(|| f(&ctx));
        println!("{}", table.render());
        println!("[{id} took {took:.2?}]\n");
        if let Err(e) = table.save_json(&ctx.out_dir) {
            eprintln!("warning: could not save {id}: {e}");
        }
    }
    println!(
        "E13 (safety) and E14 (Theorem 1 taxonomy) are property-based suites:\n\
         run `cargo test --test safety --test taxonomy`."
    );
}

// Terse wrappers over the unlimited single-threaded [`AnalysisCtx`]:
// the report binary calls these hundreds of times per table.
fn refined_analysis(sg: &SyncGraph, opts: &RefinedOptions) -> RefinedResult {
    AnalysisCtx::builder().build()
        .refined(sg, opts)
        .expect("unlimited budget cannot trip")
}

fn stall_analysis(p: &Program, opts: &StallOptions) -> StallReport {
    AnalysisCtx::builder().build().stall(p, opts)
}

fn exact_deadlock_cycles(
    sg: &SyncGraph,
    constraints: &ConstraintSet,
    budget: &ExactBudget,
) -> ExactResult {
    AnalysisCtx::builder().build()
        .exact_cycles(sg, constraints, budget)
        .expect("unlimited budget cannot trip")
}

fn verdict(free: bool) -> String {
    if free { "free" } else { "FLAG" }.to_owned()
}

fn tiered(sg: &SyncGraph, tier: Tier) -> bool {
    refined_analysis(
        sg,
        &RefinedOptions {
            tier,
            ..RefinedOptions::default()
        },
    )
    .deadlock_free
}

/// E1–E5, E7, E12: the figure matrix.
fn e_figures(_ctx: &Ctx) -> Table {
    let mut t = Table::new(
        "E1-E5_E7_E12",
        "paper figures: naive vs refined tiers vs oracle",
        &[
            "figure", "naive", "heads", "pairs", "tails", "oracle", "stall(§5)",
        ],
    );
    for (name, p) in figures::all_figures() {
        let analysed = if p.is_loop_free() { p.clone() } else { unroll_twice(&p) };
        let sg = SyncGraph::from_program(&analysed);
        let e = explore(&SyncGraph::from_program(&p), &ExploreConfig::default())
            .expect("figures are tiny");
        let stall = stall_analysis(&p, &StallOptions::default());
        t.row(vec![
            name.to_owned(),
            verdict(naive_analysis(&sg).deadlock_free),
            verdict(tiered(&sg, Tier::Heads)),
            verdict(tiered(&sg, Tier::HeadPairs)),
            verdict(tiered(&sg, Tier::HeadTails)),
            if e.has_deadlock() {
                "DEADLOCK".into()
            } else if e.has_stall() {
                "stall".into()
            } else {
                "clean".into()
            },
            match stall.verdict {
                StallVerdict::StallFree => "free".into(),
                StallVerdict::PossibleStall { .. } => "possible".into(),
                StallVerdict::Unknown { .. } => "unknown".into(),
            },
        ]);
    }
    t.note("fig1: naive flags the spurious r,s,v,w cycle; refined certifies (paper §4).");
    t.note("fig3: all local tiers flag — the global constraint 4 is future work in the paper.");
    t.note("fig4c: partial suppression (§3.1.2); heads inside the conditional are killed.");
    t.note("fig5d's oracle 'stall' is data-blind; §5.1 co-dependence proves it infeasible.");
    t
}

/// E6: Lemma 1 — unrolling preserves deadlocks.
fn e6_lemma1(ctx: &Ctx) -> Table {
    let n = if ctx.quick { 120 } else { 400 };
    let mut t = Table::new(
        "E6",
        "Lemma 1: double unrolling preserves oracle deadlocks (random loopy programs)",
        &["programs", "oracle-deadlock", "flagged on T(P)", "missed", "certified", "certified∧clean"],
    );
    let mut rng = StdRng::seed_from_u64(0x1EE7);
    let (mut deadlocks, mut flagged, mut missed, mut certified, mut certified_clean) =
        (0, 0, 0, 0, 0);
    for _ in 0..n {
        let p = random_structured(
            &mut rng,
            &StructuredConfig {
                tasks: 3,
                rendezvous_per_task: 4,
                branch_prob: 0.15,
                loop_prob: 0.35,
                message_types: 2,
            },
        );
        let e = explore(&SyncGraph::from_program(&p), &ExploreConfig::default())
            .expect("small");
        let sg = SyncGraph::from_program(&unroll_twice(&p));
        let free = refined_analysis(&sg, &RefinedOptions::default()).deadlock_free;
        if e.has_deadlock() {
            deadlocks += 1;
            if free {
                missed += 1;
            } else {
                flagged += 1;
            }
        }
        if free {
            certified += 1;
            if !e.has_deadlock() {
                certified_clean += 1;
            }
        }
    }
    t.row(vec![
        n.to_string(),
        deadlocks.to_string(),
        flagged.to_string(),
        missed.to_string(),
        certified.to_string(),
        certified_clean.to_string(),
    ]);
    t.note("'missed' must be 0 (anomaly preservation); certified∧clean = certified (soundness).");
    assert_eq!(missed, 0, "Lemma 1 violated");
    assert_eq!(certified, certified_clean, "soundness violated");
    t
}

/// E8: Theorems 2/3 against DPLL.
fn e8_reductions(ctx: &Ctx) -> Table {
    let per_point = if ctx.quick { 6 } else { 16 };
    let mut t = Table::new(
        "E8",
        "NP-hardness reductions vs DPLL (5 variables)",
        &[
            "clauses", "instances", "SAT", "thm2 agree", "thm3 agree", "DPLL med", "thm2 med", "thm3 med",
        ],
    );
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    for clauses in [2usize, 4, 6, 8] {
        let mut sat = 0;
        let (mut agree2, mut agree3) = (0, 0);
        let (mut dpll_t, mut t2_t, mut t3_t) = (Vec::new(), Vec::new(), Vec::new());
        for _ in 0..per_point {
            let cnf = Cnf::random_3cnf(&mut rng, 5, clauses);
            let (expected, dt) = timed(|| solve(&cnf).is_sat());
            dpll_t.push(dt);
            sat += usize::from(expected);
            let (got2, t2) = timed(|| {
                let sg = SyncGraph::from_program(&iwa_reductions::theorem2_program(&cnf));
                exact_deadlock_cycles(&sg, &ConstraintSet::c1_and_3a(), &ExactBudget::default())
                    .any()
            });
            t2_t.push(t2);
            agree2 += usize::from(got2 == expected);
            let (got3, t3) = timed(|| {
                let sg = iwa_reductions::theorem3_graph(&cnf);
                exact_deadlock_cycles(&sg, &ConstraintSet::c1_and_2(), &ExactBudget::default())
                    .any()
            });
            t3_t.push(t3);
            agree3 += usize::from(got3 == expected);
        }
        let med = |v: &mut Vec<std::time::Duration>| {
            v.sort();
            format!("{:.1?}", v[v.len() / 2])
        };
        t.row(vec![
            clauses.to_string(),
            per_point.to_string(),
            sat.to_string(),
            format!("{agree2}/{per_point}"),
            format!("{agree3}/{per_point}"),
            med(&mut dpll_t),
            med(&mut t2_t),
            med(&mut t3_t),
        ]);
        assert_eq!(agree2, per_point, "theorem 2 mismatch at m={clauses}");
        assert_eq!(agree3, per_point, "theorem 3 mismatch at m={clauses}");
    }
    // A guaranteed-UNSAT row: all eight sign patterns over three
    // variables (random instances at these clause/variable ratios are
    // almost always satisfiable).
    let mut unsat = Cnf::new(3);
    for bits in 0..8u32 {
        unsat.add_clause(&[(0, bits & 1 != 0), (1, bits & 2 != 0), (2, bits & 4 != 0)]);
    }
    assert!(!solve(&unsat).is_sat());
    let (got2, t2) = timed(|| {
        let sg = SyncGraph::from_program(&iwa_reductions::theorem2_program(&unsat));
        exact_deadlock_cycles(&sg, &ConstraintSet::c1_and_3a(), &ExactBudget::default()).any()
    });
    let (got3, t3) = timed(|| {
        let sg = iwa_reductions::theorem3_graph(&unsat);
        exact_deadlock_cycles(&sg, &ConstraintSet::c1_and_2(), &ExactBudget::default()).any()
    });
    assert!(!got2 && !got3, "UNSAT must have no valid cycle");
    t.row(vec![
        "8 (UNSAT)".into(),
        "1".into(),
        "0".into(),
        "1/1".into(),
        "1/1".into(),
        "-".into(),
        format!("{t2:.1?}"),
        format!("{t3:.1?}"),
    ]);
    t.note("agreement must be total: constrained-cycle existence decides satisfiability.");
    t.note("the UNSAT row uses the forced contradiction over 3 variables; its cycles all");
    t.note("die on constraint pruning, exercising the negative direction of the iff.");
    t
}

/// E9: polynomial scaling of the analyses.
fn e9_scaling(ctx: &Ctx) -> Table {
    let sizes: &[usize] = if ctx.quick {
        &[4, 8, 16, 32]
    } else {
        &[4, 8, 16, 32, 64, 128]
    };
    let mut t = Table::new(
        "E9",
        "scaling on random loop-free programs (5 tasks, growing size)",
        &[
            "family", "rv/task", "|N|", "|E_S|", "naive", "search", "sequence", "refined(total)", "scc runs",
        ],
    );
    // Two families: dense sync edges (2 message types ⇒ |E_S| ~ N²) and
    // sparse (16 types ⇒ |E_S| ~ N) — the knob that exposes the |E| term
    // of the paper's O(N·(N+E)) bound.
    for (family, types) in [("dense", 2usize), ("sparse", 16)] {
        let mut naive_pts = Vec::new();
        let mut search_pts = Vec::new();
        let mut refined_pts = Vec::new();
        for &s in sizes {
            let p = sized_random_typed(0xBEEF ^ s as u64, 5, s, types);
            let sg = SyncGraph::from_program(&p);
            let n_nodes = sg.num_nodes();
            let naive_d = median_time(5, || naive_analysis(&sg));
            let refined_res = refined_analysis(&sg, &RefinedOptions::default());
            let refined_d =
                median_time(3, || refined_analysis(&sg, &RefinedOptions::default()));
            let seq_d = median_time(3, || SequenceInfo::compute(&sg));
            // The search proper (the paper's O(N·(N+E)) claim), with the
            // supporting tables precomputed.
            let clg = iwa_syncgraph::Clg::build(&sg);
            let seq = SequenceInfo::compute(&sg);
            let cx = iwa_analysis::CoexecInfo::compute(&sg);
            let search_d = median_time(3, || {
                AnalysisCtx::builder().build()
                    .refined_with(&sg, &clg, &seq, &cx, &RefinedOptions::default())
                    .expect("unlimited budget cannot trip")
            });
            naive_pts.push((n_nodes as f64, naive_d.as_secs_f64()));
            search_pts.push((n_nodes as f64, search_d.as_secs_f64()));
            refined_pts.push((n_nodes as f64, refined_d.as_secs_f64()));
            t.row(vec![
                family.to_owned(),
                s.to_string(),
                n_nodes.to_string(),
                sg.num_sync_edges().to_string(),
                format!("{naive_d:.1?}"),
                format!("{search_d:.1?}"),
                format!("{seq_d:.1?}"),
                format!("{refined_d:.1?}"),
                refined_res.scc_runs.to_string(),
            ]);
        }
        // Degenerate points (no heads at all ⇒ nanosecond searches) would
        // distort the fit; regress over the non-trivial region only.
        let nontrivial = |pts: &[(f64, f64)]| -> Vec<(f64, f64)> {
            pts.iter().copied().filter(|&(_, y)| y > 1e-6).collect()
        };
        t.note(format!(
            "{family}: log–log slopes — naive ≈ {:.2}, search ≈ {:.2}, refined(total) ≈ {:.2}",
            loglog_slope(&naive_pts),
            loglog_slope(&nontrivial(&search_pts)),
            loglog_slope(&nontrivial(&refined_pts))
        ));
    }
    t.note(
        "'search' is the paper's per-head SCC algorithm with SEQUENCEABLE/COACCEPT/\
         NOT-COEXEC precomputed. With any fixed message alphabet |E_S| = Θ(N²) — the \
         sparse family only shrinks the constant (≈2.6× here) — so O(N·(N+E)) predicts \
         ~N³ in both, matching the ≈3.0 slopes. 'refined(total)' adds the CS88-style \
         ordering dataflow, which the paper costs separately at O(statements³).",
    );
    t
}

/// E10: exponential baselines vs the polynomial algorithm.
fn e10_baselines(ctx: &Ctx) -> Table {
    let max_pairs = if ctx.quick { 5 } else { 7 };
    let mut t = Table::new(
        "E10",
        "replicated producer/consumer pairs: polynomial vs exhaustive baselines",
        &[
            "pairs", "rendezvous", "refined", "oracle states", "oracle", "petri markings", "petri",
        ],
    );
    for pairs in 1..=max_pairs {
        let p = replicated_pairs(pairs, 3);
        let sg = SyncGraph::from_program(&p);
        let refined_d = median_time(3, || refined_analysis(&sg, &RefinedOptions::default()));
        let (oracle, od) = timed(|| {
            explore(
                &sg,
                &ExploreConfig {
                    max_states: 1 << 24,
                    max_anomalies: 4,
                    track_witnesses: false,
                    ..ExploreConfig::default()
                },
            )
            .expect("bounded")
        });
        let net = net_from_sync_graph(&sg);
        let (reach, pd) = timed(|| net.explore(1 << 24).expect("bounded"));
        t.row(vec![
            pairs.to_string(),
            p.num_rendezvous().to_string(),
            format!("{refined_d:.1?}"),
            oracle.states.to_string(),
            format!("{od:.1?}"),
            reach.markings.to_string(),
            format!("{pd:.1?}"),
        ]);
    }
    t.note("program size grows linearly; wave states grow 4^pairs, petri markings 7^pairs");
    t.note("(start/done places add positions) — the exponential blow-up the paper");
    t.note("attributes to [Tay83a]/[MSS89], and the reason §3–4 exist.");
    t
}

/// E11: precision (false-positive rates) across the accuracy/cost ladder.
fn e11_precision(ctx: &Ctx) -> Table {
    let per_point = if ctx.quick { 80 } else { 250 };
    let mut t = Table::new(
        "E11",
        "precision vs oracle on balanced random programs (3 tasks, 5 events)",
        &[
            "swaps", "programs", "deadlocked", "naiveFP", "headsFP", "pairsFP", "tailsFP", "FN(any)",
        ],
    );
    // One thread per swap level (std::thread::scope); each row gets its
    // own deterministic seed so the table is reproducible regardless of
    // scheduling.
    /// (deadlocked, naiveFP, headsFP, pairsFP, tailsFP, FN) per row.
    type RowCounts = (usize, usize, usize, usize, usize, usize);
    let rows: Vec<(usize, RowCounts)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = [0usize, 2, 4, 8]
                .into_iter()
                .map(|swaps| {
                    scope.spawn(move || {
                        let mut rng =
                            StdRng::seed_from_u64(0xF00D ^ (swaps as u64) << 32);
                        let (mut dl, mut fp_n, mut fp_h, mut fp_p, mut fp_t, mut fns) =
                            (0, 0, 0, 0, 0, 0);
                        for _ in 0..per_point {
                            let p = random_balanced(
                                &mut rng,
                                &BalancedConfig {
                                    tasks: 3,
                                    events: 5,
                                    message_types: 2,
                                    swaps,
                                },
                            );
                            let sg = SyncGraph::from_program(&p);
                            let truth = explore(&sg, &ExploreConfig::default())
                                .expect("small")
                                .has_deadlock();
                            let n_free = naive_analysis(&sg).deadlock_free;
                            let h_free = tiered(&sg, Tier::Heads);
                            let p_free = tiered(&sg, Tier::HeadPairs);
                            let t_free = tiered(&sg, Tier::HeadTails);
                            if truth {
                                dl += 1;
                                fns += usize::from(n_free || h_free || p_free || t_free);
                            } else {
                                fp_n += usize::from(!n_free);
                                fp_h += usize::from(!h_free);
                                fp_p += usize::from(!p_free);
                                fp_t += usize::from(!t_free);
                            }
                        }
                        (swaps, (dl, fp_n, fp_h, fp_p, fp_t, fns))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("row")).collect()
        });
    for (swaps, (dl, fp_n, fp_h, fp_p, fp_t, fns)) in rows {
        let pct = |x: usize| {
            let clean = per_point - dl;
            if clean == 0 {
                "-".to_owned()
            } else {
                format!("{:.0}%", 100.0 * x as f64 / clean as f64)
            }
        };
        t.row(vec![
            swaps.to_string(),
            per_point.to_string(),
            dl.to_string(),
            pct(fp_n),
            pct(fp_h),
            pct(fp_p),
            pct(fp_t),
            fns.to_string(),
        ]);
        assert_eq!(fns, 0, "safety violated at swaps={swaps}");
    }
    t.note("FP = flagged although the oracle proves deadlock-free; FN must be 0 (safety).");
    t.note("measured ladder: the head-pair tier (constraint 2 on the hypothesis pair) is the");
    t.note("big precision win; on straight-line programs heads/tails cannot beat naive often —");
    t.note("NOT-COEXEC is empty without branches, exactly as §4.2's own caveats predict.");
    t
}

/// E15: the constraint-4 post-pass (the paper's "under investigation"
/// extension, implementing its Figure-3 argument).
fn e15_constraint4(ctx: &Ctx) -> Table {
    let per_point = if ctx.quick { 120 } else { 400 };
    let mut t = Table::new(
        "E15",
        "constraint-4 post-pass: figure 3 plus random programs",
        &["workload", "programs", "deadlocked", "FP base", "FP base+c4", "FN(c4)"],
    );

    // Figure 3 itself.
    let fig3 = figures::fig3();
    let sg = SyncGraph::from_program(&fig3);
    let base = refined_analysis(&sg, &RefinedOptions::default()).deadlock_free;
    let with = refined_analysis(
        &sg,
        &RefinedOptions {
            apply_constraint4: true,
            ..RefinedOptions::default()
        },
    )
    .deadlock_free;
    t.row(vec![
        "fig3".into(),
        "1".into(),
        "0".into(),
        if base { "0" } else { "1" }.into(),
        if with { "0" } else { "1" }.into(),
        "0".into(),
    ]);
    assert!(!base && with, "constraint 4 must certify exactly figure 3");

    // Random family: measure the FP reduction and assert FN stays 0.
    let mut rng = StdRng::seed_from_u64(0xC4);
    let (mut dl, mut fp_base, mut fp_c4, mut fns) = (0, 0, 0, 0);
    for _ in 0..per_point {
        let p = random_balanced(
            &mut rng,
            &BalancedConfig {
                tasks: 3,
                events: 5,
                message_types: 2,
                swaps: 3,
            },
        );
        let sg = SyncGraph::from_program(&p);
        let truth = explore(&sg, &ExploreConfig::default())
            .expect("small")
            .has_deadlock();
        let base = refined_analysis(&sg, &RefinedOptions::default()).deadlock_free;
        let with = refined_analysis(
            &sg,
            &RefinedOptions {
                apply_constraint4: true,
                ..RefinedOptions::default()
            },
        )
        .deadlock_free;
        if truth {
            dl += 1;
            fns += usize::from(with);
        } else {
            fp_base += usize::from(!base);
            fp_c4 += usize::from(!with);
        }
    }
    let clean = per_point - dl;
    t.row(vec![
        "random (3 swaps)".into(),
        per_point.to_string(),
        dl.to_string(),
        format!("{:.0}%", 100.0 * fp_base as f64 / clean.max(1) as f64),
        format!("{:.0}%", 100.0 * fp_c4 as f64 / clean.max(1) as f64),
        fns.to_string(),
    ]);
    assert_eq!(fns, 0, "constraint 4 must stay safe");
    t.note("the post-pass certifies fig3 (all local tiers flag it) and never masks a");
    t.note("real deadlock; its FP gain on random programs depends on initial-node rescuers.");
    t
}

/// E16: marking ablations — what each of the refined algorithm's three
/// pruning devices contributes.
fn e16_ablation(ctx: &Ctx) -> Table {
    let per_point = if ctx.quick { 150 } else { 400 };
    let mut t = Table::new(
        "E16",
        "marking ablations on branching random programs (loop-free)",
        &[
            "variant", "programs", "deadlocked", "FP", "flagged total", "FN", "figures certified",
        ],
    );
    let variants: Vec<(&str, RefinedOptions)> = vec![
        ("full", RefinedOptions::default()),
        (
            "-sequenceable",
            RefinedOptions {
                use_sequenceable: false,
                ..RefinedOptions::default()
            },
        ),
        (
            "-coaccept",
            RefinedOptions {
                use_coaccept: false,
                ..RefinedOptions::default()
            },
        ),
        (
            "-not_coexec",
            RefinedOptions {
                use_not_coexec: false,
                ..RefinedOptions::default()
            },
        ),
        (
            "none (≈ naive)",
            RefinedOptions {
                use_sequenceable: false,
                use_coaccept: false,
                use_not_coexec: false,
                ..RefinedOptions::default()
            },
        ),
    ];
    // One shared program batch so variants are compared on identical data.
    let mut rng = StdRng::seed_from_u64(0xAB1A);
    let batch: Vec<(SyncGraph, bool)> = (0..per_point)
        .map(|_| {
            let p = random_structured(
                &mut rng,
                &StructuredConfig {
                    tasks: 3,
                    rendezvous_per_task: 4,
                    branch_prob: 0.35,
                    loop_prob: 0.0,
                    message_types: 2,
                },
            );
            let sg = SyncGraph::from_program(&p);
            let truth = explore(&sg, &ExploreConfig::default())
                .expect("small")
                .has_deadlock();
            (sg, truth)
        })
        .collect();
    let deadlocked = batch.iter().filter(|(_, d)| *d).count();
    for (name, opts) in variants {
        let (mut fp, mut flagged, mut fns) = (0, 0, 0);
        for (sg, truth) in &batch {
            let free = refined_analysis(sg, &opts).deadlock_free;
            if !free {
                flagged += 1;
            }
            if *truth && free {
                fns += 1;
            }
            if !truth && !free {
                fp += 1;
            }
        }
        // How many of the paper figures does this variant still certify?
        let figures_certified = figures::all_figures()
            .into_iter()
            .filter(|(_, p)| {
                let analysed =
                    if p.is_loop_free() { p.clone() } else { unroll_twice(p) };
                let sg = SyncGraph::from_program(&analysed);
                refined_analysis(&sg, &opts).deadlock_free
            })
            .count();
        let clean = per_point - deadlocked;
        t.row(vec![
            name.to_owned(),
            per_point.to_string(),
            deadlocked.to_string(),
            format!("{:.0}%", 100.0 * fp as f64 / clean.max(1) as f64),
            flagged.to_string(),
            fns.to_string(),
            format!("{figures_certified}/9"),
        ]);
        assert_eq!(fns, 0, "ablations must only lose precision, not safety");
    }
    t.note("each marking is an over-approximation killer; removing any can only add");
    t.note("false alarms (never misses) — asserted per variant. The figure column shows");
    t.note("where each device earns its keep: fig1 needs SEQUENCEABLE; random programs");
    t.note("rarely build those shapes, so aggregate FP moves little at the base tier.");
    t
}

/// E17: condition-aware cross-task co-executability (our §5.1-powered
/// extension of the NOT-COEXEC vector).
fn e17_condition_coexec(_ctx: &Ctx) -> Table {
    let mut t = Table::new(
        "E17",
        "cross-task NOT-COEXEC from encapsulated booleans (fixtures)",
        &["fixture", "pairs tier", "pairs + cond-coexec", "oracle deadlock"],
    );
    let contradiction = "task t {
            send u.s carrying v;
            if (v) { accept p; send u.q; }
         }
         task u {
            accept s binding w;
            if (w) { } else { accept q; send x.r; }
         }
         task x { accept r; send t.p; }";
    let plumbing = "task t1 {
            send t2.s carrying v;
            if (v) { send t2.a; accept b; }
         }
         task t2 {
            accept s binding w;
            if (w) { send t1.b; accept a; }
         }";
    // (fixture, expected verdict with cond-coexec, is the oracle's verdict
    // data-feasible?) — on the contradiction fixture the data-blind oracle
    // reaches exactly the wave the booleans forbid.
    for (name, src, expect_cert, oracle_feasible) in [
        ("v/¬v contradiction", contradiction, true, false),
        ("same-polarity plumbing", plumbing, false, true),
    ] {
        let p = iwa_tasklang::parse(src).expect("fixture parses");
        let sg = SyncGraph::from_program(&p);
        let base = refined_analysis(
            &sg,
            &RefinedOptions {
                tier: Tier::HeadPairs,
                ..RefinedOptions::default()
            },
        )
        .deadlock_free;
        let with = refined_analysis(
            &sg,
            &RefinedOptions {
                tier: Tier::HeadPairs,
                use_condition_coexec: true,
                ..RefinedOptions::default()
            },
        )
        .deadlock_free;
        let oracle = explore(&sg, &ExploreConfig::default())
            .expect("small")
            .has_deadlock();
        t.row(vec![
            name.to_owned(),
            verdict(base),
            verdict(with),
            format!("{oracle}{}", if oracle_feasible { "" } else { " (data-blind)" }),
        ]);
        assert_eq!(with, expect_cert);
        if oracle && oracle_feasible {
            assert!(!with, "must not mask the real deadlock");
        }
    }
    t.note("opposite-polarity guards over provably equal booleans are mutually");
    t.note("exclusive (single-assignment discipline): the first fixture's only cycle");
    t.note("needs both and dies; the second's same-polarity arms deadlock for real");
    t.note("and stay flagged. The wave oracle is data-blind, so fixture-level");
    t.note("validation (not fuzzing) covers this extension.");
    t
}

/// Keep `Program` in scope for rustdoc links in this binary.
#[allow(dead_code)]
fn _types(_: &Program) {}
