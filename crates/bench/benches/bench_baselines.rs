//! E10: the polynomial algorithm against both exhaustive baselines
//! (wave oracle = concurrency-state graph [Tay83a]; Petri reachability
//! [MSS89]) on the replicated-pairs family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iwa_analysis::{AnalysisCtx, RefinedOptions};
use iwa_bench::families::replicated_pairs;
use iwa_petri::net_from_sync_graph;
use iwa_syncgraph::SyncGraph;
use iwa_wavesim::{explore, ExploreConfig};
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let graphs: Vec<(usize, SyncGraph)> = (1..=5)
        .map(|k| (k, SyncGraph::from_program(&replicated_pairs(k, 3))))
        .collect();

    let mut g = c.benchmark_group("refined_polynomial");
    for (k, sg) in &graphs {
        g.bench_with_input(BenchmarkId::from_parameter(k), sg, |b, sg| {
            b.iter(|| {
                AnalysisCtx::builder().build()
                    .refined(black_box(sg), &RefinedOptions::default())
                    .unwrap()
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("oracle_waves");
    g.sample_size(10);
    for (k, sg) in &graphs {
        g.bench_with_input(BenchmarkId::from_parameter(k), sg, |b, sg| {
            b.iter(|| {
                explore(
                    black_box(sg),
                    &ExploreConfig {
                        max_states: 1 << 24,
                        max_anomalies: 2,
                        track_witnesses: false,
                        ..ExploreConfig::default()
                    },
                )
                .unwrap()
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("petri_reachability");
    g.sample_size(10);
    for (k, sg) in &graphs {
        let net = net_from_sync_graph(sg);
        g.bench_with_input(BenchmarkId::from_parameter(k), &net, |b, net| {
            b.iter(|| net.explore(1 << 24).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
