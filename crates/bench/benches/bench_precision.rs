//! E11: cost of the accuracy/cost ladder on a fixed random batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iwa_analysis::{naive_analysis, AnalysisCtx, RefinedOptions, Tier};
use iwa_syncgraph::SyncGraph;
use iwa_workloads::{random_balanced, BalancedConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn batch() -> Vec<SyncGraph> {
    let mut rng = StdRng::seed_from_u64(0xF00D);
    (0..24)
        .map(|_| {
            SyncGraph::from_program(&random_balanced(
                &mut rng,
                &BalancedConfig {
                    tasks: 4,
                    events: 8,
                    message_types: 2,
                    swaps: 4,
                },
            ))
        })
        .collect()
}

fn bench_precision(c: &mut Criterion) {
    let graphs = batch();
    let mut g = c.benchmark_group("ladder_batch24");
    g.bench_function("naive", |b| {
        b.iter(|| {
            for sg in &graphs {
                black_box(naive_analysis(sg));
            }
        })
    });
    for (name, tier) in [
        ("heads", Tier::Heads),
        ("pairs", Tier::HeadPairs),
        ("tails", Tier::HeadTails),
    ] {
        g.bench_with_input(BenchmarkId::new("refined", name), &tier, |b, tier| {
            b.iter(|| {
                for sg in &graphs {
                    black_box(
                        AnalysisCtx::builder().build()
                            .refined(
                                sg,
                                &RefinedOptions {
                                    tier: *tier,
                                    ..RefinedOptions::default()
                                },
                            )
                            .unwrap(),
                    );
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_precision);
criterion_main!(benches);
