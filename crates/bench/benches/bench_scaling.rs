//! E9: scaling of the polynomial analyses with program size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iwa_analysis::{naive_analysis, AnalysisCtx, RefinedOptions, SequenceInfo};
use iwa_bench::families::sized_random;
use iwa_syncgraph::{Clg, SyncGraph};
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let sizes = [4usize, 8, 16, 32, 64];
    let graphs: Vec<(usize, SyncGraph)> = sizes
        .iter()
        .map(|&s| {
            let p = sized_random(0xBEEF ^ s as u64, 5, s);
            (s, SyncGraph::from_program(&p))
        })
        .collect();

    let mut g = c.benchmark_group("naive");
    for (s, sg) in &graphs {
        g.bench_with_input(BenchmarkId::from_parameter(s), sg, |b, sg| {
            b.iter(|| naive_analysis(black_box(sg)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("refined_heads");
    for (s, sg) in &graphs {
        g.bench_with_input(BenchmarkId::from_parameter(s), sg, |b, sg| {
            b.iter(|| {
                AnalysisCtx::builder().build()
                    .refined(black_box(sg), &RefinedOptions::default())
                    .unwrap()
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("sequence_fixpoint");
    for (s, sg) in &graphs {
        g.bench_with_input(BenchmarkId::from_parameter(s), sg, |b, sg| {
            b.iter(|| SequenceInfo::compute(black_box(sg)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("clg_construction");
    for (s, sg) in &graphs {
        g.bench_with_input(BenchmarkId::from_parameter(s), sg, |b, sg| {
            b.iter(|| Clg::build(black_box(sg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
