//! E1–E5/E7/E12 micro-costs: full certification of every paper figure.

use criterion::{criterion_group, criterion_main, Criterion};
use iwa_analysis::{AnalysisCtx, CertifyOptions};
use iwa_workloads::figures;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_certify");
    for (name, p) in figures::all_figures() {
        g.bench_function(name, |b| {
            b.iter(|| {
                AnalysisCtx::builder().build()
                    .certify(black_box(&p), &CertifyOptions::default())
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
