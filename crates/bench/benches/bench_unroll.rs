//! E6: cost of the Lemma 1 transform and of analysing its output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iwa_analysis::{AnalysisCtx, RefinedOptions};
use iwa_syncgraph::SyncGraph;
use iwa_tasklang::transforms::unroll_twice;
use iwa_workloads::classics::pipeline_looping;
use std::hint::black_box;

fn bench_unroll(c: &mut Criterion) {
    let mut g = c.benchmark_group("unroll_twice");
    for stages in [2usize, 4, 8, 16] {
        let p = pipeline_looping(stages);
        g.bench_with_input(BenchmarkId::from_parameter(stages), &p, |b, p| {
            b.iter(|| unroll_twice(black_box(p)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("certify_unrolled_pipeline");
    for stages in [2usize, 4, 8] {
        let sg = SyncGraph::from_program(&unroll_twice(&pipeline_looping(stages)));
        g.bench_with_input(BenchmarkId::from_parameter(stages), &sg, |b, sg| {
            b.iter(|| {
                AnalysisCtx::builder().build()
                    .refined(black_box(sg), &RefinedOptions::default())
                    .unwrap()
            })
        });
    }
    g.finish();

    // Nesting depth: T(P) doubles per level (§3.1.4's 2^depth bound).
    let mut g = c.benchmark_group("unroll_nested");
    for depth in [1usize, 3, 5, 7] {
        let mut inner = String::from("send u.m;");
        for _ in 0..depth {
            inner = format!("while {{ {inner} }}");
        }
        let src = format!("task t {{ {inner} }} task u {{ while {{ accept m; }} }}");
        let p = iwa_tasklang::parse(&src).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(depth), &p, |b, p| {
            b.iter(|| unroll_twice(black_box(p)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_unroll);
criterion_main!(benches);
