//! E8: building and deciding the Theorem 2/3 reductions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iwa_analysis::exact::{ConstraintSet, ExactBudget};
use iwa_analysis::AnalysisCtx;
use iwa_reductions::{theorem2_program, theorem3_graph};
use iwa_sat::{solve, Cnf};
use iwa_syncgraph::SyncGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn instances() -> Vec<(usize, Cnf)> {
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    [2usize, 4, 6]
        .iter()
        .map(|&m| (m, Cnf::random_3cnf(&mut rng, 5, m)))
        .collect()
}

fn bench_reduction(c: &mut Criterion) {
    let mut g = c.benchmark_group("dpll");
    for (m, cnf) in instances() {
        g.bench_with_input(BenchmarkId::from_parameter(m), &cnf, |b, cnf| {
            b.iter(|| solve(black_box(cnf)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("theorem2_build");
    for (m, cnf) in instances() {
        g.bench_with_input(BenchmarkId::from_parameter(m), &cnf, |b, cnf| {
            b.iter(|| theorem2_program(black_box(cnf)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("theorem2_decide");
    g.sample_size(10);
    for (m, cnf) in instances() {
        let sg = SyncGraph::from_program(&theorem2_program(&cnf));
        g.bench_with_input(BenchmarkId::from_parameter(m), &sg, |b, sg| {
            b.iter(|| {
                AnalysisCtx::builder().build()
                    .exact_cycles(
                        black_box(sg),
                        &ConstraintSet::c1_and_3a(),
                        &ExactBudget::default(),
                    )
                    .unwrap()
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("theorem3_decide");
    g.sample_size(10);
    for (m, cnf) in instances() {
        let sg = theorem3_graph(&cnf);
        g.bench_with_input(BenchmarkId::from_parameter(m), &sg, |b, sg| {
            b.iter(|| {
                AnalysisCtx::builder().build()
                    .exact_cycles(
                        black_box(sg),
                        &ConstraintSet::c1_and_2(),
                        &ExactBudget::default(),
                    )
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
