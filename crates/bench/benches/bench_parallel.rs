//! The parallel execution layer: `check_batch` file fan-out and the
//! refined analysis' per-head fan-out, `-j 1` vs `-j 4`.
//!
//! The interesting number is the ratio between the two variants of each
//! group — the verdicts are identical by construction (see the
//! determinism tests); only wall-clock time may differ. On a
//! single-core machine the ratio degenerates to ~1 and what the bench
//! demonstrates instead is that the pool's overhead is negligible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iwa_analysis::{AnalysisCtx, RefinedOptions};
use iwa_bench::families::sized_random;
use iwa_engine::{check_batch, CheckOptions, EngineOptions, Rung};
use iwa_syncgraph::SyncGraph;
use std::hint::black_box;
use std::path::PathBuf;

/// Write an adversarial corpus (large random programs whose refined
/// analysis dominates the runtime) into a scratch directory once.
fn corpus_dir() -> Vec<PathBuf> {
    let dir = std::env::temp_dir().join(format!("iwa-bench-parallel-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    (0..8u64)
        .map(|i| {
            let p = sized_random(0xADE ^ i, 5, 40);
            let path = dir.join(format!("adversarial_{i}.iwa"));
            std::fs::write(&path, p.to_source()).unwrap();
            path
        })
        .collect()
}

fn bench_parallel(c: &mut Criterion) {
    let files = corpus_dir();

    // Batch checking: files fan out across the worker pool. Start at the
    // Heads rung so each file is compute-bound in the refined analysis
    // (the oracle's state-space walk would swamp the comparison).
    let mut g = c.benchmark_group("check_batch_jobs");
    g.sample_size(10);
    for jobs in [1usize, 4] {
        let opts = CheckOptions {
            engine: EngineOptions {
                start: Rung::Heads,
                ..EngineOptions::default()
            },
            jobs,
            batch_deadline: None,
        };
        g.bench_with_input(BenchmarkId::from_parameter(jobs), &opts, |b, opts| {
            b.iter(|| check_batch(black_box(&files), opts))
        });
    }
    g.finish();

    // Per-head fan-out inside one refined analysis of one big graph.
    let sg = SyncGraph::from_program(&sized_random(0xFA2, 6, 64));
    let mut g = c.benchmark_group("refined_workers");
    g.sample_size(10);
    for workers in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    AnalysisCtx::builder()
                        .workers(workers)
                        .build()
                        .refined(black_box(&sg), &RefinedOptions::default())
                        .unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
